//! Epoch-keyed filter memoization.
//!
//! The first stage of every filter-based search — the `FilterMatrix`
//! build — is a pure function of `(host model, query, constraint)`.
//! The registry versions host models with a [`ModelEpoch`], so the
//! triple collapses to a hashable [`FilterKey`]: `(host name, epoch,
//! query fingerprint, constraint source)`. A [`FilterCache`] memoizes
//! built matrices under that key, which is what lets negotiation loops,
//! `Scheduler::find_window` sweeps and repeated `submit`s stop
//! rebuilding identical filters: same key → the *same* `Arc`'d matrix
//! (trivially bitwise-identical); epoch bump → guaranteed miss, because
//! a registry epoch never repeats (see [`crate::registry`]) — stale
//! entries can never be served, only evicted.
//!
//! ## Eviction
//!
//! Two mechanisms bound the cache:
//!
//! * **staleness purge** — inserting a filter for `(host, epoch)` drops
//!   every entry of the same host with an older epoch (the registry
//!   guarantees those versions can never be requested again);
//! * **LRU cap** — beyond [`FilterCache::with_capacity`]'s limit the
//!   least-recently-used entry goes, so a sweep over many distinct
//!   constraints (negotiation levels, scheduler residual models) cannot
//!   grow the cache without bound.
//!
//! ## Epoch promotion
//!
//! An epoch bump normally means a guaranteed miss and a full rebuild —
//! even when the mutation behind the bump touched host nodes the cached
//! filter never references. [`FilterCache::try_promote`] closes that
//! gap: given the would-be key for the *current* epoch, it finds the
//! newest superseded entry with the same `(host, query, constraint)`
//! identity and asks a caller-supplied verdict (typically: does
//! [`ModelRegistry::dirty_between`](crate::registry::ModelRegistry::dirty_between)
//! intersect the filter's
//! [`touched_hosts`](netembed::FilterMatrix::touched_hosts)?) whether
//! the old matrix is still exact. On a yes the slot is re-keyed in
//! place — the next fetch is a plain hit, no build, no miss. The
//! verdict runs *outside* the cache lock; the re-key re-checks that the
//! candidate survived and that nobody filled the new key meanwhile.
//!
//! ## Epoch patching
//!
//! Promotion only helps when the dirty window misses the filter
//! entirely. [`FilterCache::try_patch`] covers the common middle
//! ground — the window *does* touch cached candidates, but only to
//! remove them (attribute churn, logical edge/node removals): the
//! caller's decide hook clones the superseded matrix, repairs it with
//! [`FilterMatrix::patch`](netembed::FilterMatrix::patch) **outside the
//! cache lock**, and hands back [`PatchDecision::Replace`]; the cache
//! memoizes the repaired clone under the new key (counted under
//! [`FilterCache::patches`]) and the next fetch is a plain hit. A
//! mutation that *adds* a feasible candidate cannot be spliced into the
//! frozen arena — `patch` reports `NeedsRebuild`, the hook returns
//! [`PatchDecision::Rebuild`] (counted under
//! [`FilterCache::patch_rebuilds`]) and the caller falls through to the
//! normal miss/build path. This is also what makes promotion *sound*
//! for additive mutations: every non-empty dirty window re-evaluates
//! through `patch`'s addition detection instead of trusting the
//! touched-host intersection alone (which cannot see a dirty node
//! becoming newly admissible *outside* the cached candidate set).
//!
//! ## Concurrent-miss deduplication
//!
//! Two threads missing on the same key at the same time used to both
//! build (last insert wins — correct, but the second build is pure
//! waste). [`FilterCache::fetch_or_build`] closes that hole with an
//! **in-flight build table**: the first miss registers the key and gets
//! a [`BuildTicket`] (it is the designated builder); any later miss on
//! the same key finds the registration and *waits* on it instead of
//! building, receiving the exact same `Arc` the winner produced
//! ([`FilterFetch::Waited`]). A builder that fails — deadline-truncated
//! build, problem error, panic — abandons its ticket (explicitly or on
//! drop), which wakes the waiters so one of them can take over. Waiters
//! pass their own remaining budget; a wait that outlives it returns
//! [`FilterFetch::WaitExpired`] rather than blocking past the
//! requester's deadline.
//!
//! Two overload/cancellation refinements (see [`crate::admission`]):
//! the number of threads blocked on one in-flight build is bounded by
//! [`FilterCache::with_max_waiters`] — the excess gets
//! [`FilterFetch::Overloaded`] instead of convoying behind a single
//! build — and [`FilterCache::fetch_or_build_watch`] accepts a cancel
//! probe so a planner dispatcher whose requester dropped its ticket
//! stops waiting ([`FilterFetch::Cancelled`]) instead of blocking on a
//! build whose result nobody will read.

use crate::registry::ModelEpoch;
use netembed::FilterMatrix;
use netgraph::Network;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Default entry cap of [`FilterCache::new`].
pub const DEFAULT_CAPACITY: usize = 64;

/// Identity of one memoized filter build. Equality of keys must imply
/// equality of the built filter: `host`+`epoch` pin one exact model
/// version (registry epochs are never reused), `constraint` is the
/// verbatim source text, and `query_hash` is a 128-bit structural
/// fingerprint of the query network ([`network_fingerprint`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterKey {
    /// Registry model name (or a caller-chosen namespace, e.g. the
    /// scheduler's `"@scheduler"` residual models).
    pub host: String,
    /// Model version the filter was built against.
    pub epoch: ModelEpoch,
    /// Structural fingerprint of the query network.
    pub query_hash: u128,
    /// Constraint source text, verbatim.
    pub constraint: String,
}

struct Slot {
    filter: Arc<FilterMatrix>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<FilterKey, Slot>,
    /// Logical clock for LRU ordering.
    tick: u64,
}

/// One registered in-flight build: the winner flips `state` from
/// `Building` to `Done`/`Abandoned` and notifies; joiners wait on `cv`.
/// Waiters hold their own `Arc` clone, so the winner can drop the table
/// entry immediately — late wakeups still read the final state.
struct InFlight {
    state: StdMutex<BuildState>,
    cv: StdCondvar,
    /// Threads currently blocked on this build. Joined/left under the
    /// cache's `inflight` map lock on entry and atomically on every
    /// exit path (shared, expired, cancelled, abandoned-retry), so the
    /// waiter cap can never leak a slot.
    waiters: AtomicU64,
    /// Set by [`FilterCache::invalidate_host`] while the build is still
    /// in flight: the key's namespace died (model removed), so
    /// [`BuildTicket::complete`] must *not* memoize the result — doing
    /// so would resurrect an entry for the dead host after the
    /// invalidation purge. Waiters still receive the built filter (the
    /// answer is correct for the epoch they asked about); it just is
    /// not cached.
    poisoned: AtomicBool,
}

enum BuildState {
    Building,
    Done(Arc<FilterMatrix>),
    /// The builder gave up (truncated build, error, panic): one waiter
    /// should retry and become the new builder.
    Abandoned,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            state: StdMutex::new(BuildState::Building),
            cv: StdCondvar::new(),
            waiters: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }
}

/// RAII waiter-count slot: constructed under the inflight map lock,
/// released on every exit path (including unwinds) so
/// [`FilterCache::with_max_waiters`] accounting can never drift.
struct WaiterSlot<'a>(&'a InFlight);

impl Drop for WaiterSlot<'_> {
    fn drop(&mut self) {
        self.0.waiters.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What [`FilterCache::fetch_or_build`] resolved a key to.
pub enum FilterFetch<'a> {
    /// Served from the memo (counted as a hit).
    Hit(Arc<FilterMatrix>),
    /// Another thread was already building this key; this call blocked
    /// until that build completed and got the same `Arc` it memoized
    /// (counted as a dedup wait, not a miss).
    Waited(Arc<FilterMatrix>),
    /// Another thread was building, but the caller's wait budget ran
    /// out first. The caller should report a timeout, exactly as if it
    /// had spent the budget building.
    WaitExpired,
    /// Nobody has this key: the caller is the designated builder and
    /// must [`BuildTicket::complete`] (or abandon) the ticket (counted
    /// as a miss).
    MustBuild(BuildTicket<'a>),
    /// The in-flight build for this key already has the maximum number
    /// of waiters ([`FilterCache::with_max_waiters`]): the caller was
    /// shed instead of joining the convoy (counted under
    /// [`FilterCache::dedup_shed`]).
    Overloaded,
    /// The caller's cancel probe fired while it waited on another
    /// thread's build (only via [`FilterCache::fetch_or_build_watch`]):
    /// the requester dropped its ticket, so the caller should stop
    /// working on its behalf. Nothing was built or counted.
    Cancelled,
}

/// The designated-builder token handed out by
/// [`FilterCache::fetch_or_build`] on a true miss. Exactly one exists
/// per in-flight key. [`BuildTicket::complete`] memoizes the filter and
/// hands it to every waiter; dropping the ticket without completing
/// (build failure, deadline truncation, panic unwind) abandons the
/// build, waking waiters so one can take over — waiters can therefore
/// never deadlock on a builder that died.
pub struct BuildTicket<'a> {
    cache: &'a FilterCache,
    key: FilterKey,
    slot: Arc<InFlight>,
    resolved: bool,
}

impl BuildTicket<'_> {
    /// Publish a finished build: memoize it under the ticket's key and
    /// wake every waiter with the same `Arc`. Callers must only
    /// complete *complete* builds (see [`FilterCache::insert`]).
    ///
    /// The memo insert and the in-flight-table removal happen under one
    /// hold of the in-flight lock, and the insert is skipped when
    /// [`FilterCache::invalidate_host`] poisoned this build meanwhile —
    /// otherwise a builder racing a model removal would complete its
    /// register-then-reprobe insert *after* the invalidation purge and
    /// resurrect an entry for the dead host. Waiters are woken with the
    /// filter either way.
    pub fn complete(mut self, filter: Arc<FilterMatrix>) {
        self.resolved = true;
        {
            let mut fl = self.cache.inflight.lock().unwrap();
            if !self.slot.poisoned.load(Ordering::Relaxed) {
                self.cache.insert(self.key.clone(), filter.clone());
            }
            fl.remove(&self.key);
        }
        *self.slot.state.lock().unwrap() = BuildState::Done(filter);
        self.slot.cv.notify_all();
    }

    /// Give the key up without publishing (truncated or failed build):
    /// wakes waiters so one of them becomes the new builder.
    pub fn abandon(mut self) {
        self.resolve(BuildState::Abandoned);
    }

    fn resolve(&mut self, state: BuildState) {
        self.resolved = true;
        self.cache.inflight.lock().unwrap().remove(&self.key);
        *self.slot.state.lock().unwrap() = state;
        self.slot.cv.notify_all();
    }
}

impl Drop for BuildTicket<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.resolve(BuildState::Abandoned);
        }
    }
}

impl std::fmt::Debug for BuildTicket<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildTicket")
            .field("key", &self.key)
            .finish()
    }
}

/// Thread-safe memo of built `FilterMatrix`es, keyed by [`FilterKey`].
/// Shared by every [`PreparedQuery`](crate::PreparedQuery) of a service
/// (one query's build serves later identical submits), with lifetime
/// hit/miss/dedup-wait counters for observability.
pub struct FilterCache {
    state: Mutex<CacheState>,
    /// Keys currently being built (see the module docs on concurrent-miss
    /// deduplication). `std` primitives on purpose: joiners need a
    /// condvar, which the vendored `parking_lot` stand-in doesn't carry.
    inflight: StdMutex<HashMap<FilterKey, Arc<InFlight>>>,
    capacity: usize,
    /// Cap on threads blocked on one in-flight build (the admission
    /// policy's `max_dedup_waiters`); `usize::MAX` = unbounded.
    max_waiters: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    dedup_waits: AtomicU64,
    dedup_shed: AtomicU64,
    promotions: AtomicU64,
    patches: AtomicU64,
    patch_rebuilds: AtomicU64,
}

/// The caller's verdict for one [`FilterCache::try_patch`] window,
/// produced by the decide hook *outside* the cache lock (module docs,
/// "Epoch patching").
pub enum PatchDecision {
    /// The window cannot be classified (broken delta chain, no registry
    /// history): leave the cache untouched and fall through to the
    /// normal miss/build path. No counter moves.
    Skip,
    /// The composed dirty window is provably empty: the superseded
    /// matrix is still exact — re-key it in place (a promotion).
    Promote,
    /// The dirty window only removed candidates: memoize this repaired
    /// clone under the new key (counted under [`FilterCache::patches`]).
    Replace(Arc<FilterMatrix>),
    /// The window added a feasible candidate
    /// ([`PatchOutcome::NeedsRebuild`](netembed::PatchOutcome)): the
    /// frozen arena cannot absorb it — fall through to a full rebuild
    /// (counted under [`FilterCache::patch_rebuilds`]).
    Rebuild,
}

impl FilterCache {
    /// A cache capped at [`DEFAULT_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` filters (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FilterCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
            }),
            inflight: StdMutex::new(HashMap::new()),
            capacity: capacity.max(1),
            max_waiters: usize::MAX,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            dedup_shed: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            patch_rebuilds: AtomicU64::new(0),
        }
    }

    /// Bound the threads allowed to block on one in-flight build; the
    /// excess resolves as [`FilterFetch::Overloaded`]. Clamped to ≥ 1
    /// (zero would shed every joiner, turning dedup off entirely —
    /// use a higher bound, or accept the rebuilds explicitly).
    pub fn with_max_waiters(mut self, max: usize) -> Self {
        self.max_waiters = max.max(1);
        self
    }

    /// The memoized filter for `key`, refreshing its LRU position.
    pub fn lookup(&self, key: &FilterKey) -> Option<Arc<FilterMatrix>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.filter.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`FilterCache::lookup`] that only counts (and refreshes) hits —
    /// a `None` here is not yet a miss, because `fetch_or_build` may
    /// still resolve it as a dedup wait.
    fn peek_hit(&self, key: &FilterKey) -> Option<Arc<FilterMatrix>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            slot.filter.clone()
        })
    }

    /// Resolve `key` with concurrent-miss deduplication (module docs):
    /// memo hit → [`FilterFetch::Hit`]; someone else already building →
    /// block (up to `wait_budget`; `None` waits indefinitely) and share
    /// their result; true miss → the caller becomes the designated
    /// builder and receives a [`BuildTicket`].
    ///
    /// **"Concurrent misses build once" is deterministic**, not
    /// best-effort: a winner memoizes *before* clearing its in-flight
    /// entry, and a caller that registers as builder re-probes the memo
    /// before being handed the ticket — so if a concurrent build
    /// completed anywhere in between, the caller takes the hit instead
    /// of rebuilding. A second `MustBuild` for the same `(key, model)`
    /// can only follow an *abandoned* (truncated/failed) build, or an
    /// LRU eviction of the entry itself.
    pub fn fetch_or_build(
        &self,
        key: &FilterKey,
        wait_budget: Option<Duration>,
    ) -> FilterFetch<'_> {
        self.fetch_or_build_watch(key, wait_budget, None)
    }

    /// [`FilterCache::fetch_or_build`] with a cancel probe: while the
    /// caller is blocked on another thread's build, the probe is polled
    /// (a few times per millisecond); the moment it returns `true` the
    /// call resolves as [`FilterFetch::Cancelled`] and the waiter slot
    /// frees. The planner's dispatcher passes a probe that checks
    /// whether the member it is working for dropped its ticket — so
    /// cancellation propagates *into* dedup wait chains instead of the
    /// dispatcher blocking on a build whose result nobody will read.
    pub fn fetch_or_build_watch(
        &self,
        key: &FilterKey,
        wait_budget: Option<Duration>,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> FilterFetch<'_> {
        /// Poll granularity for the cancel probe while blocked.
        const CANCEL_POLL: Duration = Duration::from_millis(1);
        let wait_deadline = wait_budget.map(|b| Instant::now() + b);
        loop {
            if let Some(filter) = self.peek_hit(key) {
                return FilterFetch::Hit(filter);
            }
            // `Ok` = someone is already building (join them — the
            // waiter slot is claimed under the map lock, so the cap is
            // race-free); `Err` = this caller registered the key and is
            // the builder.
            let joined = {
                let mut fl = self.inflight.lock().unwrap();
                match fl.get(key) {
                    Some(slot) => {
                        if slot.waiters.load(Ordering::Relaxed) >= self.max_waiters as u64 {
                            self.dedup_shed.fetch_add(1, Ordering::Relaxed);
                            return FilterFetch::Overloaded;
                        }
                        slot.waiters.fetch_add(1, Ordering::Relaxed);
                        Ok(slot.clone())
                    }
                    None => {
                        let slot = Arc::new(InFlight::new());
                        fl.insert(key.clone(), slot.clone());
                        Err(slot)
                    }
                }
            };
            let slot = match joined {
                Err(slot) => {
                    let ticket = BuildTicket {
                        cache: self,
                        key: key.clone(),
                        slot,
                        resolved: false,
                    };
                    // Close the probe→register window: a winner that
                    // completed in between memoized *before* clearing
                    // its in-flight entry, so this re-probe is
                    // definitive — a successful concurrent build can
                    // never be repeated. (Dropping the fresh ticket
                    // releases the key; anyone who joined it in the
                    // meantime retries and takes the hit too.)
                    if let Some(filter) = self.peek_hit(key) {
                        drop(ticket);
                        return FilterFetch::Hit(filter);
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return FilterFetch::MustBuild(ticket);
                }
                Ok(slot) => slot,
            };
            let waiting = WaiterSlot(&slot);
            // Join the in-flight build. The winner may already have
            // resolved the slot — the state check under the slot lock
            // makes the wait race-free (no lost notification).
            let mut st = slot.state.lock().unwrap();
            loop {
                match &*st {
                    BuildState::Done(filter) => {
                        self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                        return FilterFetch::Waited(filter.clone());
                    }
                    BuildState::Abandoned => break, // retry from the top
                    BuildState::Building => {}
                }
                if cancel.is_some_and(|c| c()) {
                    return FilterFetch::Cancelled;
                }
                // With a cancel probe the wait is sliced so the probe
                // keeps getting polled; a pure deadline wait blocks for
                // its whole remainder.
                let bound = match wait_deadline {
                    None => cancel.map(|_| CANCEL_POLL),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return FilterFetch::WaitExpired;
                        }
                        let left = d - now;
                        Some(if cancel.is_some() {
                            left.min(CANCEL_POLL)
                        } else {
                            left
                        })
                    }
                };
                st = match bound {
                    None => slot.cv.wait(st).unwrap(),
                    Some(b) => slot.cv.wait_timeout(st, b).unwrap().0,
                };
            }
            drop(st);
            drop(waiting);
        }
    }

    /// Memoize `filter` under `key`. Purges permanently-stale entries
    /// (same host, older epoch) and LRU-evicts past the capacity cap.
    /// Callers must only insert *complete* builds — a truncated filter
    /// is a function of the deadline, not the key.
    pub fn insert(&self, key: FilterKey, filter: Arc<FilterMatrix>) {
        debug_assert!(!filter.truncated(), "caching a truncated filter");
        let mut st = self.state.lock();
        st.map
            .retain(|k, _| k.host != key.host || k.epoch >= key.epoch);
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(
            key,
            Slot {
                filter,
                last_used: tick,
            },
        );
        while st.map.len() > self.capacity {
            let oldest = st
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity map");
            st.map.remove(&oldest);
        }
    }

    /// Re-key a superseded entry to `key` when `verdict` certifies the
    /// old matrix is still exact (module docs, "Epoch promotion").
    ///
    /// The candidate is the *newest* memoized entry sharing `key`'s
    /// host, query fingerprint and constraint with an older epoch.
    /// `verdict(old_epoch, filter)` decides outside the cache lock —
    /// callers typically check that the registry's accumulated dirty
    /// set between the epochs misses the filter's touched host nodes.
    /// Returns `true` when `key` is memoized afterwards (promotion
    /// landed, or a concurrent build already filled it); the next
    /// lookup is then a hit. No counter moves on `false` — the caller
    /// falls through to the normal miss/build path.
    pub fn try_promote(
        &self,
        key: &FilterKey,
        verdict: impl FnOnce(ModelEpoch, &FilterMatrix) -> bool,
    ) -> bool {
        let candidate = {
            let st = self.state.lock();
            if st.map.contains_key(key) {
                return true;
            }
            st.map
                .iter()
                .filter(|(k, _)| {
                    k.host == key.host
                        && k.query_hash == key.query_hash
                        && k.constraint == key.constraint
                        && k.epoch < key.epoch
                })
                .max_by_key(|(k, _)| k.epoch)
                .map(|(k, slot)| (k.clone(), slot.filter.clone()))
        };
        let Some((old_key, filter)) = candidate else {
            return false;
        };
        // The verdict may consult the registry (lock-ordering hazard if
        // held under the cache lock) and scan bitsets (latency under a
        // hot lock) — run it on the clones.
        if !verdict(old_key.epoch, &filter) {
            return false;
        }
        self.rekey(&old_key, key)
    }

    /// Re-key `old_key`'s slot to `key`, re-checking (under the lock)
    /// that the candidate survived and that nobody filled `key`
    /// meanwhile. Shared tail of [`FilterCache::try_promote`] and the
    /// promote arm of [`FilterCache::try_patch`].
    fn rekey(&self, old_key: &FilterKey, key: &FilterKey) -> bool {
        let mut st = self.state.lock();
        if st.map.contains_key(key) {
            // A concurrent builder landed the fresh epoch first; its
            // `insert` purged the candidate. The goal state holds.
            return true;
        }
        let Some(slot) = st.map.remove(old_key) else {
            // Evicted while the verdict ran; nothing left to promote.
            return false;
        };
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(
            key.clone(),
            Slot {
                filter: slot.filter,
                last_used: tick,
            },
        );
        self.promotions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Repair-or-promote a superseded entry to `key` (module docs,
    /// "Epoch patching"). The candidate is selected exactly as in
    /// [`FilterCache::try_promote`] (newest same-identity entry with an
    /// older epoch; an already-memoized `key` short-circuits `true`);
    /// `decide(old_epoch, filter)` then classifies the dirty window
    /// *outside* the cache lock — typically by cloning the matrix and
    /// running [`FilterMatrix::patch`](netembed::FilterMatrix::patch)
    /// against the new-epoch model. Returns `true` when `key` is
    /// memoized afterwards; on `false` the caller falls through to the
    /// normal miss/build path.
    pub fn try_patch(
        &self,
        key: &FilterKey,
        decide: impl FnOnce(ModelEpoch, &FilterMatrix) -> PatchDecision,
    ) -> bool {
        let candidate = {
            let st = self.state.lock();
            if st.map.contains_key(key) {
                return true;
            }
            st.map
                .iter()
                .filter(|(k, _)| {
                    k.host == key.host
                        && k.query_hash == key.query_hash
                        && k.constraint == key.constraint
                        && k.epoch < key.epoch
                })
                .max_by_key(|(k, _)| k.epoch)
                .map(|(k, slot)| (k.clone(), slot.filter.clone()))
        };
        let Some((old_key, filter)) = candidate else {
            return false;
        };
        match decide(old_key.epoch, &filter) {
            PatchDecision::Skip => false,
            PatchDecision::Promote => self.rekey(&old_key, key),
            PatchDecision::Replace(patched) => {
                debug_assert!(!patched.truncated(), "caching a truncated patch");
                // `insert`'s same-host staleness purge drops the
                // superseded candidate in the same lock hold.
                self.insert(key.clone(), patched);
                self.patches.fetch_add(1, Ordering::Relaxed);
                true
            }
            PatchDecision::Rebuild => {
                self.patch_rebuilds.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Drop every entry for `host` (any epoch) — eager invalidation for
    /// callers that know a namespace is dead (e.g. a removed model).
    /// Epoch keying already guarantees stale entries are never *served*;
    /// this only reclaims their memory early.
    ///
    /// In-flight builds for the host are *poisoned* under the same hold
    /// of the in-flight lock that shields the memo purge, so a builder
    /// completing concurrently cannot re-insert a dead-host entry after
    /// the purge ([`BuildTicket::complete`] checks the poison flag under
    /// that lock before memoizing).
    pub fn invalidate_host(&self, host: &str) {
        let fl = self.inflight.lock().unwrap();
        for (k, slot) in fl.iter() {
            if k.host == host {
                slot.poisoned.store(true, Ordering::Relaxed);
            }
        }
        self.state.lock().map.retain(|k, _| k.host != host);
        drop(fl);
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses. A concurrent miss that waited on the
    /// winner's in-flight build counts under
    /// [`FilterCache::dedup_waits`] instead — only designated builders
    /// count here.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of lookups that blocked on another thread's
    /// in-flight build of the same key instead of building their own
    /// copy (each one is a filter build the dedup table saved).
    pub fn dedup_waits(&self) -> u64 {
        self.dedup_waits.load(Ordering::Relaxed)
    }

    /// Lifetime count of lookups shed because an in-flight build's
    /// waiter cap ([`FilterCache::with_max_waiters`]) was already
    /// reached.
    pub fn dedup_shed(&self) -> u64 {
        self.dedup_shed.load(Ordering::Relaxed)
    }

    /// Lifetime count of superseded entries re-keyed to a newer epoch
    /// by [`FilterCache::try_promote`] — each one is a full filter
    /// rebuild the dirty-set bookkeeping saved.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Lifetime count of superseded entries repaired in place by
    /// [`FilterCache::try_patch`]'s `Replace` arm — each one turned a
    /// full O(|EQ|·|ER|) rebuild into a dirty-window re-scan.
    pub fn patches(&self) -> u64 {
        self.patches.load(Ordering::Relaxed)
    }

    /// Lifetime count of patch attempts that fell back to a full
    /// rebuild because the dirty window *added* a feasible candidate
    /// ([`PatchDecision::Rebuild`]) — the soundness valve that keeps
    /// additive mutations from being served a stale filter.
    pub fn patch_rebuilds(&self) -> u64 {
        self.patch_rebuilds.load(Ordering::Relaxed)
    }

    /// Keys currently being built (observability; racy by nature).
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().unwrap().len()
    }
}

impl Default for FilterCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Identity of one memoized substrate coarsening: the hierarchy is a
/// pure function of the host model bytes (pinned by `host` + `epoch` —
/// registry epochs never repeat) and the coarsening knobs. Queries and
/// constraints deliberately do **not** participate: one hierarchy
/// serves every query against that model snapshot, which is the whole
/// point of caching it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HierarchyKey {
    /// Registry model name.
    pub host: String,
    /// Model version the hierarchy was coarsened from.
    pub epoch: ModelEpoch,
    /// Coarsening knobs (different levels/floor → different hierarchy).
    pub spec: netembed::HierarchySpec,
}

struct HierarchySlot {
    hierarchy: Arc<netembed::SubstrateHierarchy>,
    last_used: u64,
}

struct HierarchyState {
    map: HashMap<HierarchyKey, HierarchySlot>,
    tick: u64,
}

/// Default entry cap of [`HierarchyCache::new`]. Hierarchies are
/// per-model (not per-query), so a service rarely holds more than a
/// handful of live ones.
pub const HIERARCHY_CAPACITY: usize = 8;

/// Thread-safe memo of coarsened substrates
/// ([`SubstrateHierarchy`](netembed::SubstrateHierarchy)), keyed by
/// [`HierarchyKey`]. Shares the [`FilterCache`] eviction story —
/// inserting a `(host, epoch)` purges the same host's older epochs
/// (the registry guarantees they can never be requested again), and an
/// LRU cap bounds the total.
///
/// Unlike the filter cache there is no in-flight dedup table: a
/// hierarchy build is read-only over the host and deterministic, so
/// two threads racing on a cold key both build and the second insert
/// harmlessly replaces the first with an identical structure. The
/// filter cache needed dedup because misses are per-(query,
/// constraint) and bursty; hierarchy misses happen once per model
/// epoch.
pub struct HierarchyCache {
    state: Mutex<HierarchyState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    promotions: AtomicU64,
}

impl HierarchyCache {
    /// A cache capped at [`HIERARCHY_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(HIERARCHY_CAPACITY)
    }

    /// A cache holding at most `capacity` hierarchies (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        HierarchyCache {
            state: Mutex::new(HierarchyState {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    /// The memoized hierarchy for `key`, refreshing its LRU position.
    pub fn lookup(&self, key: &HierarchyKey) -> Option<Arc<netembed::SubstrateHierarchy>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.hierarchy.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Resolve `key`, building (outside the lock) on a miss. The bool
    /// is `true` on a hit. Concurrent cold misses may both run `build`;
    /// see the type docs for why that race is benign.
    pub fn fetch_or_build(
        &self,
        key: &HierarchyKey,
        build: impl FnOnce() -> netembed::SubstrateHierarchy,
    ) -> (Arc<netembed::SubstrateHierarchy>, bool) {
        if let Some(h) = self.lookup(key) {
            return (h, true);
        }
        let built = Arc::new(build());
        self.insert(key.clone(), built.clone());
        (built, false)
    }

    /// Memoize `hierarchy` under `key`. Purges permanently-stale
    /// entries (same host, older epoch) and LRU-evicts past the cap.
    pub fn insert(&self, key: HierarchyKey, hierarchy: Arc<netembed::SubstrateHierarchy>) {
        let mut st = self.state.lock();
        st.map
            .retain(|k, _| k.host != key.host || k.epoch >= key.epoch);
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(
            key,
            HierarchySlot {
                hierarchy,
                last_used: tick,
            },
        );
        while st.map.len() > self.capacity {
            let oldest = st
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity map");
            st.map.remove(&oldest);
        }
    }

    /// Re-key a superseded hierarchy to `key` when `verdict(old_epoch)`
    /// certifies nothing changed between the epochs — mirroring
    /// [`FilterCache::try_promote`]. The candidate is the newest
    /// memoized entry sharing `key`'s host and coarsening spec with an
    /// older epoch; the typical verdict checks that the registry's
    /// composed dirty window between the epochs is `Some` *and empty*
    /// (a hierarchy aggregates every node, so any non-empty window can
    /// change the coarsening). Returns `true` when `key` is memoized
    /// afterwards — the next fetch is a hit, no re-coarsening.
    pub fn try_promote(
        &self,
        key: &HierarchyKey,
        verdict: impl FnOnce(crate::registry::ModelEpoch) -> bool,
    ) -> bool {
        let candidate = {
            let st = self.state.lock();
            if st.map.contains_key(key) {
                return true;
            }
            st.map
                .iter()
                .filter(|(k, _)| k.host == key.host && k.spec == key.spec && k.epoch < key.epoch)
                .max_by_key(|(k, _)| k.epoch)
                .map(|(k, _)| k.clone())
        };
        let Some(old_key) = candidate else {
            return false;
        };
        // The verdict consults the registry — run it outside the lock.
        if !verdict(old_key.epoch) {
            return false;
        }
        let mut st = self.state.lock();
        if st.map.contains_key(key) {
            return true;
        }
        let Some(slot) = st.map.remove(&old_key) else {
            return false;
        };
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(
            key.clone(),
            HierarchySlot {
                hierarchy: slot.hierarchy,
                last_used: tick,
            },
        );
        self.promotions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drop every hierarchy for `host` (any epoch) — eager invalidation
    /// for removed models, mirroring [`FilterCache::invalidate_host`].
    pub fn invalidate_host(&self, host: &str) {
        self.state.lock().map.retain(|k, _| k.host != host);
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses (each one coarsened the substrate).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of superseded hierarchies re-keyed to a newer
    /// epoch by [`HierarchyCache::try_promote`] — each one is a full
    /// substrate re-coarsening the empty-window check saved.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }
}

impl Default for HierarchyCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HierarchyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchyCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("promotions", &self.promotions())
            .finish()
    }
}

impl std::fmt::Debug for FilterCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("dedup_waits", &self.dedup_waits())
            .field("dedup_shed", &self.dedup_shed())
            .field("promotions", &self.promotions())
            .field("patches", &self.patches())
            .field("patch_rebuilds", &self.patch_rebuilds())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// Two independently-seeded hashers fed one byte stream: a single
/// network traversal yields both 64-bit halves of the fingerprint.
struct PairHasher {
    lo: DefaultHasher,
    hi: DefaultHasher,
}

impl Hasher for PairHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.lo.write(bytes);
        self.hi.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.lo.finish()
    }
}

/// Allocation-free attribute digest: variant tag + raw payload bits
/// (`f64::to_bits` for numbers, so values hash by representation —
/// exactly what "same model bytes" means here).
fn hash_attr(h: &mut PairHasher, val: &netgraph::AttrValue) {
    match val {
        netgraph::AttrValue::Num(x) => {
            0u8.hash(h);
            x.to_bits().hash(h);
        }
        netgraph::AttrValue::Bool(b) => {
            1u8.hash(h);
            b.hash(h);
        }
        netgraph::AttrValue::Str(st) => {
            2u8.hash(h);
            st.as_ref().hash(h);
        }
    }
}

/// 128-bit structural fingerprint of a network: direction, nodes (ids,
/// names, attributes), edges (endpoints, attributes) and the attribute
/// schema, digested in **one traversal** into two independently-seeded
/// hashers. This runs on every `submit`/`prepare`, so it stays
/// allocation-light: no per-attribute formatting, one reused id sort
/// buffer. Two networks that produce different filter matrices for any
/// constraint differ in at least one digested component, so a collision
/// requires both 64-bit halves to collide at once — vanishing for
/// in-process cache lifetimes. Only meaningful within one process (the
/// underlying hasher is not stable across Rust versions); never
/// persist it.
pub fn network_fingerprint(net: &Network) -> u128 {
    let mut h = {
        let mut lo = DefaultHasher::new();
        let mut hi = DefaultHasher::new();
        0x5eed_0001u64.hash(&mut lo);
        0x5eed_0002u64.hash(&mut hi);
        PairHasher { lo, hi }
    };
    net.is_undirected().hash(&mut h);
    net.node_count().hash(&mut h);
    net.edge_count().hash(&mut h);
    // Attribute names in schema order (AttrIds are interned in schema
    // order, so per-element attr ids below are comparable once the
    // schema itself is part of the digest).
    for (id, name) in net.schema().iter() {
        id.0.hash(&mut h);
        name.hash(&mut h);
    }
    // Iteration order of an attr map is not canonical; sort ids per
    // element into one reused buffer, then hash id + value pairs.
    let mut ids: Vec<u16> = Vec::new();
    for v in net.node_ids() {
        v.0.hash(&mut h);
        net.node_name(v).hash(&mut h);
        ids.extend(net.node_attrs(v).map(|(id, _)| id.0));
        ids.sort_unstable();
        for id in ids.drain(..) {
            id.hash(&mut h);
            if let Some(val) = net.node_attr(v, netgraph::AttrId(id)) {
                hash_attr(&mut h, val);
            }
        }
    }
    for e in net.edge_refs() {
        (e.src.0, e.dst.0).hash(&mut h);
        ids.extend(net.edge_attrs(e.id).map(|(id, _)| id.0));
        ids.sort_unstable();
        for id in ids.drain(..) {
            id.hash(&mut h);
            if let Some(val) = net.edge_attr(e.id, netgraph::AttrId(id)) {
                hash_attr(&mut h, val);
            }
        }
    }
    let lo = h.lo.finish() as u128;
    let hi = h.hi.finish() as u128;
    (hi << 64) | lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use netembed::{Deadline, Problem, SearchStats};
    use netgraph::Direction;

    fn path_host(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<_> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            let e = g.add_edge(w[0], w[1]);
            g.set_edge_attr(e, "d", 1.0);
        }
        g
    }

    fn build(host: &Network) -> Arc<FilterMatrix> {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let p = Problem::new(&q, host, "true").unwrap();
        let mut dl = Deadline::unlimited();
        let mut stats = SearchStats::default();
        Arc::new(FilterMatrix::build(&p, &mut dl, &mut stats).unwrap())
    }

    fn key(host: &str, epoch: u64, constraint: &str) -> FilterKey {
        FilterKey {
            host: host.to_string(),
            epoch: ModelEpoch(epoch),
            query_hash: 7,
            constraint: constraint.to_string(),
        }
    }

    #[test]
    fn lookup_hits_exact_key_only() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "true"), f.clone());
        assert!(cache.lookup(&key("h", 1, "true")).is_some());
        assert!(cache.lookup(&key("h", 2, "true")).is_none(), "other epoch");
        assert!(cache.lookup(&key("g", 1, "true")).is_none(), "other host");
        assert!(
            cache.lookup(&key("h", 1, "false")).is_none(),
            "other constraint"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn newer_epoch_purges_same_host_only() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        cache.insert(key("h", 1, "b"), f.clone());
        cache.insert(key("g", 1, "a"), f.clone());
        assert_eq!(cache.len(), 3);
        // Host h moved to epoch 5: both its epoch-1 entries are dead.
        cache.insert(key("h", 5, "a"), f.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key("h", 1, "a")).is_none());
        assert!(cache.lookup(&key("h", 1, "b")).is_none());
        assert!(cache.lookup(&key("h", 5, "a")).is_some());
        assert!(cache.lookup(&key("g", 1, "a")).is_some(), "other host kept");
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let cache = FilterCache::with_capacity(2);
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("a", 1, "x"), f.clone());
        cache.insert(key("b", 1, "x"), f.clone());
        // Touch `a` so `b` is the LRU entry.
        assert!(cache.lookup(&key("a", 1, "x")).is_some());
        cache.insert(key("c", 1, "x"), f.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key("a", 1, "x")).is_some());
        assert!(cache.lookup(&key("b", 1, "x")).is_none(), "LRU evicted");
        assert!(cache.lookup(&key("c", 1, "x")).is_some());
    }

    #[test]
    fn invalidate_host_drops_all_epochs() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        cache.insert(key("h", 2, "b"), f.clone());
        cache.insert(key("g", 1, "a"), f);
        cache.invalidate_host("h");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key("g", 1, "a")).is_some());
    }

    #[test]
    fn promotion_rekeys_the_superseded_entry_in_place() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        cache.insert(key("h", 1, "b"), f.clone());
        let mut seen = None;
        assert!(cache.try_promote(&key("h", 3, "a"), |old, _| {
            seen = Some(old);
            true
        }));
        assert_eq!(seen, Some(ModelEpoch(1)));
        assert_eq!(cache.promotions(), 1);
        let misses_before = cache.misses();
        assert!(cache.lookup(&key("h", 3, "a")).is_some(), "promoted");
        assert_eq!(cache.misses(), misses_before, "promotion → hit, no miss");
        assert!(
            cache.lookup(&key("h", 1, "a")).is_none(),
            "old key re-keyed"
        );
        assert!(
            cache.lookup(&key("h", 1, "b")).is_some(),
            "sibling constraints stay resident as future candidates"
        );
        // Promotions chain: the next bump promotes the epoch-3 slot.
        assert!(cache.try_promote(&key("h", 5, "a"), |old, _| {
            assert_eq!(old, ModelEpoch(3), "newest superseded epoch wins");
            true
        }));
        assert_eq!(cache.promotions(), 2);
    }

    #[test]
    fn promotion_respects_the_verdict_and_the_key_identity() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        assert!(
            !cache.try_promote(&key("h", 5, "a"), |_, _| false),
            "a refusing verdict must not promote"
        );
        assert!(
            !cache.try_promote(&key("h", 5, "b"), |_, _| true),
            "different constraint is a different filter"
        );
        assert!(
            !cache.try_promote(&key("g", 5, "a"), |_, _| true),
            "different host is a different namespace"
        );
        assert!(
            !cache.try_promote(&key("h", 0, "a"), |_, _| true),
            "an older target epoch has no superseded candidate"
        );
        assert_eq!(cache.promotions(), 0);
        assert!(cache.lookup(&key("h", 1, "a")).is_some(), "entry untouched");
    }

    #[test]
    fn promotion_short_circuits_when_the_key_is_already_memoized() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 5, "a"), f.clone());
        assert!(
            cache.try_promote(&key("h", 5, "a"), |_, _| panic!(
                "verdict must not run when the key is already present"
            )),
            "an already-memoized key reports success"
        );
        assert_eq!(cache.promotions(), 0, "nothing was re-keyed");
    }

    #[test]
    fn concurrent_misses_build_once_and_share_the_arc() {
        // The ISSUE's two-thread contract: the first miss becomes the
        // designated builder (the only `miss`); the second blocks on the
        // in-flight table and receives the *same* `Arc`, counted as a
        // dedup wait, not a miss. Deterministic: the cache is empty and
        // the key is registered in-flight before the second thread
        // starts, so it can only ever resolve as `Waited`.
        let cache = FilterCache::new();
        let host = path_host(4);
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("empty cache must hand out a build ticket");
        };
        assert_eq!(cache.in_flight(), 1);
        let waited = std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.fetch_or_build(&k, None) {
                FilterFetch::Waited(f) => f,
                other => panic!(
                    "second miss must wait on the in-flight build, got {}",
                    match other {
                        FilterFetch::Hit(_) => "Hit",
                        FilterFetch::WaitExpired => "WaitExpired",
                        FilterFetch::MustBuild(_) => "MustBuild",
                        FilterFetch::Overloaded => "Overloaded",
                        FilterFetch::Cancelled => "Cancelled",
                        FilterFetch::Waited(_) => unreachable!(),
                    }
                ),
            });
            let built = build(&host);
            ticket.complete(built.clone());
            let waited = waiter.join().unwrap();
            assert!(Arc::ptr_eq(&built, &waited), "waiter got a different Arc");
            waited
        });
        assert_eq!(cache.misses(), 1, "only the designated builder misses");
        assert_eq!(cache.dedup_waits(), 1);
        assert_eq!(cache.in_flight(), 0, "completion clears the table");
        // The memo now serves the same Arc as a plain hit.
        let hit = cache.lookup(&k).expect("memoized");
        assert!(Arc::ptr_eq(&hit, &waited));
    }

    #[test]
    fn abandoned_build_hands_the_key_to_a_waiter() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("first fetch must build");
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.fetch_or_build(&k, None) {
                // The abandoned slot makes the waiter retry; with the
                // key free again it becomes the new designated builder.
                FilterFetch::MustBuild(t) => t.complete(build(&host)),
                _ => panic!("waiter must take over after an abandon"),
            });
            // Simulates a deadline-truncated or failed build.
            ticket.abandon();
            waiter.join().unwrap();
        });
        assert_eq!(cache.misses(), 2, "both fetches ended up building");
        assert_eq!(cache.dedup_waits(), 0);
        assert!(cache.lookup(&k).is_some(), "the takeover build memoized");
    }

    #[test]
    fn dropping_a_ticket_abandons_the_build() {
        // A builder that unwinds (panic, `?`-propagated error) must not
        // leave waiters stuck: Drop abandons.
        let cache = FilterCache::new();
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("first fetch must build");
        };
        assert_eq!(cache.in_flight(), 1);
        drop(ticket);
        assert_eq!(cache.in_flight(), 0);
        assert!(
            matches!(cache.fetch_or_build(&k, None), FilterFetch::MustBuild(_)),
            "the key must be buildable again"
        );
    }

    #[test]
    fn wait_budget_bounds_the_block() {
        use std::time::Duration;
        let cache = FilterCache::new();
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(_ticket) = cache.fetch_or_build(&k, None) else {
            panic!("first fetch must build");
        };
        // The builder never completes within the waiter's budget: the
        // waiter gets its deadline back instead of blocking forever.
        let start = std::time::Instant::now();
        assert!(matches!(
            cache.fetch_or_build(&k, Some(Duration::from_millis(20))),
            FilterFetch::WaitExpired
        ));
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(cache.dedup_waits(), 0, "an expired wait saved nothing");
    }

    #[test]
    fn waiter_cap_sheds_the_excess_joiner() {
        use std::sync::atomic::AtomicUsize;
        // Cap of 1: the first joiner blocks, the second is shed with
        // `Overloaded` instead of convoying. Deterministic setup: the
        // builder registers first, then one joiner claims the only
        // waiter slot before the shed probe runs.
        let cache = FilterCache::new().with_max_waiters(1);
        let host = path_host(4);
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("empty cache must hand out a build ticket");
        };
        let outcomes = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.fetch_or_build(&k, None) {
                FilterFetch::Waited(_) => outcomes.fetch_add(1, Ordering::Relaxed),
                _ => panic!("first joiner fits under the cap"),
            });
            // Spin until the joiner holds its waiter slot, so the shed
            // check below is deterministic.
            while ticket.slot.waiters.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
            assert!(
                matches!(cache.fetch_or_build(&k, None), FilterFetch::Overloaded),
                "second joiner must be shed at the waiter cap"
            );
            ticket.complete(build(&host));
            waiter.join().unwrap();
        });
        assert_eq!(cache.dedup_shed(), 1);
        assert_eq!(cache.dedup_waits(), 1);
        // The shed thread freed no slot it never held; a fresh fetch
        // after completion is a plain hit.
        assert!(matches!(
            cache.fetch_or_build(&k, None),
            FilterFetch::Hit(_)
        ));
    }

    #[test]
    fn cancel_probe_aborts_a_dedup_wait() {
        use std::sync::atomic::AtomicBool;
        let cache = FilterCache::new();
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("first fetch must build");
        };
        let cancelled = AtomicBool::new(false);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let probe = || cancelled.load(Ordering::Relaxed);
                match cache.fetch_or_build_watch(&k, None, Some(&probe)) {
                    FilterFetch::Cancelled => {}
                    _ => panic!("the probe must abort the wait"),
                }
            });
            // Give the waiter time to actually block, then fire the
            // probe; the builder never completes, so only cancellation
            // can release the waiter.
            std::thread::sleep(Duration::from_millis(10));
            cancelled.store(true, Ordering::Relaxed);
            waiter.join().unwrap();
        });
        // The cancelled waiter released its slot: a later joiner under
        // a cap of 1 still fits.
        assert_eq!(ticket.slot.waiters.load(Ordering::Relaxed), 0);
        drop(ticket);
        assert_eq!(cache.dedup_waits(), 0, "a cancelled wait saved nothing");
    }

    #[test]
    fn invalidate_host_poisons_in_flight_builds() {
        // The satellite-1 race: a builder registered before
        // `invalidate_host` (model removal) must not resurrect an entry
        // for the dead host when it completes afterwards.
        let cache = FilterCache::new();
        let host = path_host(4);
        let k = key("h", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("empty cache must hand out a build ticket");
        };
        cache.invalidate_host("h");
        // Waiters joined before the poison still get the filter — the
        // answer is correct for the epoch they asked about.
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.fetch_or_build(&k, None) {
                FilterFetch::Waited(f) => f,
                _ => panic!("joiner must share the in-flight build"),
            });
            ticket.complete(build(&host));
            waiter.join().unwrap();
        });
        assert_eq!(cache.len(), 0, "poisoned completion must not memoize");
        let misses = cache.misses();
        assert!(cache.lookup(&k).is_none(), "dead-host entry resurrected");
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn invalidate_host_leaves_other_hosts_in_flight() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let k = key("g", 1, "true");
        let FilterFetch::MustBuild(ticket) = cache.fetch_or_build(&k, None) else {
            panic!("empty cache must hand out a build ticket");
        };
        cache.invalidate_host("h");
        ticket.complete(build(&host));
        assert!(cache.lookup(&k).is_some(), "other host must memoize");
    }

    #[test]
    fn try_patch_replaces_with_the_repaired_clone() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        let repaired = build(&host);
        let mut seen = None;
        assert!(cache.try_patch(&key("h", 3, "a"), |old, _| {
            seen = Some(old);
            PatchDecision::Replace(repaired.clone())
        }));
        assert_eq!(seen, Some(ModelEpoch(1)));
        assert_eq!(cache.patches(), 1);
        assert_eq!(cache.promotions(), 0);
        assert_eq!(cache.len(), 1, "insert purged the superseded entry");
        let got = cache.lookup(&key("h", 3, "a")).expect("patched entry");
        assert!(Arc::ptr_eq(&got, &repaired));
        assert!(cache.lookup(&key("h", 1, "a")).is_none());
    }

    #[test]
    fn try_patch_promote_arm_rekeys_in_place() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        assert!(cache.try_patch(&key("h", 3, "a"), |_, _| PatchDecision::Promote));
        assert_eq!(cache.promotions(), 1);
        assert_eq!(cache.patches(), 0);
        let got = cache.lookup(&key("h", 3, "a")).expect("promoted entry");
        assert!(Arc::ptr_eq(&got, &f), "promotion re-keys the same Arc");
    }

    #[test]
    fn try_patch_rebuild_and_skip_fall_through() {
        let cache = FilterCache::new();
        let host = path_host(4);
        let f = build(&host);
        cache.insert(key("h", 1, "a"), f.clone());
        assert!(!cache.try_patch(&key("h", 3, "a"), |_, _| PatchDecision::Rebuild));
        assert_eq!(cache.patch_rebuilds(), 1);
        assert!(!cache.try_patch(&key("h", 3, "a"), |_, _| PatchDecision::Skip));
        assert_eq!(cache.patch_rebuilds(), 1, "skip moves no counter");
        assert!(
            cache.lookup(&key("h", 1, "a")).is_some(),
            "fall-through leaves the candidate resident"
        );
        // No candidate at all (different identity): decide never runs.
        assert!(!cache.try_patch(&key("h", 3, "b"), |_, _| panic!(
            "decide must not run without a candidate"
        )));
        // An already-memoized key short-circuits without deciding.
        cache.insert(key("h", 3, "a"), f);
        assert!(cache.try_patch(&key("h", 3, "a"), |_, _| panic!(
            "decide must not run when the key is already present"
        )));
    }

    fn hkey(host: &str, epoch: u64) -> HierarchyKey {
        HierarchyKey {
            host: host.to_string(),
            epoch: ModelEpoch(epoch),
            spec: netembed::HierarchySpec::default(),
        }
    }

    #[test]
    fn hierarchy_promotion_rekeys_the_superseded_entry() {
        let cache = HierarchyCache::new();
        let host = path_host(8);
        let spec = netembed::HierarchySpec::default();
        let h = Arc::new(netembed::SubstrateHierarchy::build(&host, &spec));
        cache.insert(hkey("h", 1), h.clone());
        let mut seen = None;
        assert!(cache.try_promote(&hkey("h", 3), |old| {
            seen = Some(old);
            true
        }));
        assert_eq!(seen, Some(ModelEpoch(1)));
        assert_eq!(cache.promotions(), 1);
        let got = cache.lookup(&hkey("h", 3)).expect("promoted");
        assert!(Arc::ptr_eq(&got, &h));
        assert!(cache.lookup(&hkey("h", 1)).is_none(), "old key re-keyed");
        // Refusal and identity mismatches fall through.
        assert!(!cache.try_promote(&hkey("h", 5), |_| false));
        assert!(!cache.try_promote(&hkey("g", 5), |_| true));
        let mut wider = hkey("h", 5);
        wider.spec.min_nodes += 1;
        assert!(
            !cache.try_promote(&wider, |_| true),
            "other spec, other key"
        );
        assert_eq!(cache.promotions(), 1);
        // Already-memoized target short-circuits without a verdict.
        assert!(cache.try_promote(&hkey("h", 3), |_| panic!(
            "verdict must not run when the key is already present"
        )));
    }

    #[test]
    fn fingerprint_separates_structure_names_and_attrs() {
        let base = path_host(4);
        assert_eq!(network_fingerprint(&base), network_fingerprint(&base));
        assert_eq!(
            network_fingerprint(&base),
            network_fingerprint(&base.clone())
        );

        let mut extra_node = base.clone();
        extra_node.add_node("x");
        assert_ne!(network_fingerprint(&base), network_fingerprint(&extra_node));

        let mut attr_changed = base.clone();
        attr_changed.set_edge_attr(netgraph::EdgeId(0), "d", 2.0);
        assert_ne!(
            network_fingerprint(&base),
            network_fingerprint(&attr_changed)
        );

        let mut renamed = path_host(3);
        let other = path_host(3);
        renamed.set_node_attr(netgraph::NodeId(0), "cap", 1.0);
        assert_ne!(network_fingerprint(&renamed), network_fingerprint(&other));
    }
}

//! The registry delta feed: fault-tolerant external model ingestion.
//!
//! The ROADMAP's production shape has registry mutations arriving from
//! an *external* watch stream (the etcd-watch parameter-storage shape
//! of the "incremental epoch deltas" item), not from in-process
//! closures. [`RegistryFeed`] is that consumer: it pulls
//! sequence-numbered [`RegistryDelta`]s from a [`DeltaStream`] and
//! applies them through
//! [`ModelRegistry::update_dirty`](crate::ModelRegistry::update_dirty),
//! so every applied delta both bumps the host's epoch *and* records its
//! dirty-node set for
//! [`ModelRegistry::dirty_between`](crate::ModelRegistry::dirty_between)
//! (which the
//! [`FilterCache`](crate::cache::FilterCache)'s epoch-promotion path
//! consumes).
//!
//! ## Fault tolerance
//!
//! Real watch streams drop, duplicate, reorder and corrupt. The feed's
//! contract is that none of that can corrupt the registry — only delay
//! it:
//!
//! * **duplicates / stale sequences** (`next_seq ≤` cursor) are
//!   idempotently dropped;
//! * **out-of-order deltas** park in a bounded reorder buffer keyed by
//!   `base_seq`; the moment the missing predecessor applies, the parked
//!   chain drains in order;
//! * **gaps** — a parked chain whose predecessor never arrives within
//!   [`FeedConfig::gap_patience`] pumps, a reorder-buffer overflow, an
//!   overlapping sequence range, or a delta that fails validation
//!   against the live model — trigger a **resync**: a full snapshot is
//!   re-fetched through the [`SnapshotSource`], the cursor jumps to the
//!   snapshot's sequence, and superseded parked deltas are discarded.
//!   Failed fetches retry with exponential backoff plus deterministic
//!   jitter ([`RegistryFeed::next_retry_in`] — the feed never sleeps
//!   itself); once [`FeedConfig::resync_attempts`] fetches in a row
//!   fail the feed surfaces [`FeedState::Stalled`] (it still retries on
//!   every later pump, so a recovered source brings it back).
//!
//! The driver is deliberately **pull-based and single-owner**:
//! [`RegistryFeed::pump`] takes `&mut self`, drains whatever the
//! stream has buffered, and returns the resulting [`FeedState`].
//! Callers own the cadence (a loop with sleeps, a test harness with
//! none); the service only sees the side effects — registry mutations
//! and the [`FeedStatus`] health block that
//! [`NetEmbedService::feed_status`] exposes and the staleness gate
//! reads (see the crate docs' "Staleness and degradation").
//!
//! ## Ledger discipline
//!
//! Like the admission ledgers, feed accounting balances exactly: every
//! received delta ends in exactly one bucket, so
//! `received == applied + duplicates + discarded + rejected + parked`
//! holds at every pump boundary ([`FeedTelemetry::balanced`]).
//! `reordered` is informational (the subset of parked-then-applied
//! deltas) and deliberately outside the identity.

use crate::registry::DirtySet;
use crate::NetEmbedService;
use netgraph::{AttrValue, Network, NodeId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Consumer side of a registry mutation stream. Pull-based so it is
/// trivially backed by a channel, a replay log, a scripted test vector
/// (`VecDeque<RegistryDelta>` implements it) or a real watcher.
/// `next_delta` returns `None` when nothing is available *right now*;
/// the feed simply tries again on the next pump.
pub trait DeltaStream {
    /// The next delta, if one is available.
    fn next_delta(&mut self) -> Option<RegistryDelta>;
}

impl DeltaStream for std::collections::VecDeque<RegistryDelta> {
    fn next_delta(&mut self) -> Option<RegistryDelta> {
        self.pop_front()
    }
}

impl DeltaStream for std::sync::mpsc::Receiver<RegistryDelta> {
    fn next_delta(&mut self) -> Option<RegistryDelta> {
        self.try_recv().ok()
    }
}

/// Full-state recovery source for resyncs. `fetch` returns `None` on a
/// failed attempt (the feed retries with backoff); a closure
/// `FnMut() -> Option<FeedSnapshot>` implements it directly.
pub trait SnapshotSource {
    /// One snapshot fetch attempt.
    fn fetch(&mut self) -> Option<FeedSnapshot>;
}

impl<F: FnMut() -> Option<FeedSnapshot>> SnapshotSource for F {
    fn fetch(&mut self) -> Option<FeedSnapshot> {
        (self)()
    }
}

/// A full registry snapshot, current as of stream sequence `seq`:
/// applying it is equivalent to having applied every delta with
/// `next_seq ≤ seq`.
#[derive(Debug, Clone)]
pub struct FeedSnapshot {
    /// The stream position this snapshot captures.
    pub seq: u64,
    /// Wholesale replacement models, applied via
    /// [`ModelRegistry::register`](crate::ModelRegistry::register)
    /// (which deliberately breaks the dirty-history chain — a snapshot
    /// swap has no per-node delta).
    pub models: Vec<(String, Network)>,
}

/// One sequence-numbered mutation of one host model. `base_seq` /
/// `next_seq` are the stream positions before/after this delta; the
/// feed applies it only when its cursor is exactly `base_seq`.
/// `dirty` is the producer's claim of every host node the mutation
/// touches (mutated nodes plus both endpoints of mutated edges); the
/// feed re-derives the touched set during validation and rejects a
/// delta whose claim does not cover it — an under-reported dirty set
/// would silently break the cache-promotion soundness argument.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryDelta {
    /// Registry model name the mutation targets.
    pub host: String,
    /// Stream position this delta applies on top of.
    pub base_seq: u64,
    /// Stream position after this delta (`> base_seq`).
    pub next_seq: u64,
    /// The structured mutation.
    pub mutation: DeltaMutation,
    /// Producer-declared dirty-node set, recorded per epoch transition.
    pub dirty: DirtySet,
}

/// The structured mutations a delta can carry — the same vocabulary the
/// in-process mutators use (attribute writes, reservation adjustments,
/// monitor flaps, topology growth). Node references are raw ids into
/// the host model's dense id space.
///
/// The model substrate is an append-only arena (no node/edge removal
/// exists in `netgraph`), so [`DeltaMutation::RemoveNode`] /
/// [`DeltaMutation::RemoveEdge`] are **logical tombstones**: they set
/// the element's [`UP_ATTR`](crate::monitor::UP_ATTR) to `false`, the
/// same marker the monitor simulator flaps and §VI-B constraints
/// filter on.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaMutation {
    /// Set one node attribute.
    SetNodeAttr {
        /// Target node id.
        node: u32,
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// Set one edge attribute (the edge must exist).
    SetEdgeAttr {
        /// Edge source node id.
        src: u32,
        /// Edge destination node id.
        dst: u32,
        /// Attribute name.
        attr: String,
        /// New value.
        value: AttrValue,
    },
    /// A reservation commit: subtract each amount from the named
    /// numeric node attribute (capacity deduction).
    ReservationCommit {
        /// `(node id, attribute, amount)` deductions.
        deductions: Vec<(u32, String, f64)>,
    },
    /// A reservation release: add each amount back.
    ReservationRelease {
        /// `(node id, attribute, amount)` restores.
        restores: Vec<(u32, String, f64)>,
    },
    /// A monitor observation: flip the node's
    /// [`UP_ATTR`](crate::monitor::UP_ATTR) liveness marker.
    MonitorTick {
        /// Observed node id.
        node: u32,
        /// Whether the node is up.
        up: bool,
    },
    /// Append a node (its id is the model's current node count; the
    /// dirty set must name that id).
    AddNode {
        /// Unique node name.
        name: String,
    },
    /// Append an edge between two existing nodes (no parallel edges).
    AddEdge {
        /// Source node id.
        src: u32,
        /// Destination node id.
        dst: u32,
    },
    /// Logically remove a node: tombstone via
    /// [`UP_ATTR`](crate::monitor::UP_ATTR) `= false`.
    RemoveNode {
        /// Target node id.
        node: u32,
    },
    /// Logically remove an edge: tombstone via
    /// [`UP_ATTR`](crate::monitor::UP_ATTR) `= false` on the edge.
    RemoveEdge {
        /// Edge source node id.
        src: u32,
        /// Edge destination node id.
        dst: u32,
    },
}

impl DeltaMutation {
    /// The host nodes this mutation touches — what the delta's declared
    /// dirty set must cover. `AddNode` touches the id the new node will
    /// get (`node_count` at apply time), which is why the model is an
    /// input.
    fn touched(&self, model: &Network) -> Vec<u32> {
        match self {
            DeltaMutation::SetNodeAttr { node, .. }
            | DeltaMutation::MonitorTick { node, .. }
            | DeltaMutation::RemoveNode { node } => vec![*node],
            DeltaMutation::SetEdgeAttr { src, dst, .. }
            | DeltaMutation::AddEdge { src, dst }
            | DeltaMutation::RemoveEdge { src, dst } => vec![*src, *dst],
            DeltaMutation::ReservationCommit { deductions } => {
                deductions.iter().map(|(n, _, _)| *n).collect()
            }
            DeltaMutation::ReservationRelease { restores } => {
                restores.iter().map(|(n, _, _)| *n).collect()
            }
            DeltaMutation::AddNode { .. } => vec![model.node_count() as u32],
        }
    }
}

/// Why a delta failed validation against the live model. Any of these
/// marks the stream corrupt relative to our state and triggers a
/// resync (counted under [`FeedTelemetry::rejected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaFault {
    UnknownHost,
    UnknownNode,
    UnknownEdge,
    DuplicateNode,
    DuplicateEdge,
    NotNumeric,
    DirtyUndeclared,
}

/// Validate `delta` against the live `model`: every referenced element
/// must exist (or, for adds, must not), reservation targets must be
/// numeric, and the declared dirty set must cover the derived touched
/// set.
fn validate(model: &Network, delta: &RegistryDelta) -> Result<(), DeltaFault> {
    let n = model.node_count() as u32;
    let node_ok = |id: u32| {
        if id < n {
            Ok(())
        } else {
            Err(DeltaFault::UnknownNode)
        }
    };
    let edge_ok = |src: u32, dst: u32| {
        node_ok(src)?;
        node_ok(dst)?;
        model
            .find_edge(NodeId(src), NodeId(dst))
            .map(|_| ())
            .ok_or(DeltaFault::UnknownEdge)
    };
    match &delta.mutation {
        DeltaMutation::SetNodeAttr { node, .. }
        | DeltaMutation::MonitorTick { node, .. }
        | DeltaMutation::RemoveNode { node } => node_ok(*node)?,
        DeltaMutation::SetEdgeAttr { src, dst, .. } | DeltaMutation::RemoveEdge { src, dst } => {
            edge_ok(*src, *dst)?
        }
        DeltaMutation::ReservationCommit { deductions: adj }
        | DeltaMutation::ReservationRelease { restores: adj } => {
            for (node, attr, _) in adj {
                node_ok(*node)?;
                match model.node_attr_by_name(NodeId(*node), attr) {
                    Some(AttrValue::Num(_)) => {}
                    _ => return Err(DeltaFault::NotNumeric),
                }
            }
        }
        DeltaMutation::AddNode { name } => {
            if model.node_by_name(name).is_some() {
                return Err(DeltaFault::DuplicateNode);
            }
        }
        DeltaMutation::AddEdge { src, dst } => {
            node_ok(*src)?;
            node_ok(*dst)?;
            if model.find_edge(NodeId(*src), NodeId(*dst)).is_some() {
                return Err(DeltaFault::DuplicateEdge);
            }
        }
    }
    for id in delta.mutation.touched(model) {
        if !delta.dirty.contains(id) {
            return Err(DeltaFault::DirtyUndeclared);
        }
    }
    Ok(())
}

/// Apply a validated mutation to the model copy inside
/// [`ModelRegistry::update_dirty`](crate::ModelRegistry::update_dirty).
fn apply_mutation(net: &mut Network, mutation: &DeltaMutation) {
    match mutation {
        DeltaMutation::SetNodeAttr { node, attr, value } => {
            net.set_node_attr(NodeId(*node), attr, value.clone());
        }
        DeltaMutation::SetEdgeAttr {
            src,
            dst,
            attr,
            value,
        } => {
            let e = net
                .find_edge(NodeId(*src), NodeId(*dst))
                .expect("validated edge");
            net.set_edge_attr(e, attr, value.clone());
        }
        DeltaMutation::ReservationCommit { deductions } => {
            adjust(net, deductions, -1.0);
        }
        DeltaMutation::ReservationRelease { restores } => {
            adjust(net, restores, 1.0);
        }
        DeltaMutation::MonitorTick { node, up } => {
            net.set_node_attr(NodeId(*node), crate::monitor::UP_ATTR, *up);
        }
        DeltaMutation::AddNode { name } => {
            net.add_node(name.clone());
        }
        DeltaMutation::AddEdge { src, dst } => {
            net.add_edge(NodeId(*src), NodeId(*dst));
        }
        DeltaMutation::RemoveNode { node } => {
            net.set_node_attr(NodeId(*node), crate::monitor::UP_ATTR, false);
        }
        DeltaMutation::RemoveEdge { src, dst } => {
            let e = net
                .find_edge(NodeId(*src), NodeId(*dst))
                .expect("validated edge");
            net.set_edge_attr(e, crate::monitor::UP_ATTR, false);
        }
    }
}

fn adjust(net: &mut Network, terms: &[(u32, String, f64)], sign: f64) {
    for (node, attr, amount) in terms {
        let current = match net.node_attr_by_name(NodeId(*node), attr) {
            Some(AttrValue::Num(x)) => *x,
            _ => unreachable!("validated numeric attr"),
        };
        net.set_node_attr(NodeId(*node), attr, current + sign * amount);
    }
}

/// Feed health, coarse. Degradation is monotone left to right; the
/// staleness gate treats anything but `Live` as degraded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum FeedState {
    /// Cursor is at the stream frontier; nothing parked, no resync.
    #[default]
    Live = 0,
    /// Out-of-order deltas are parked; waiting (within patience) for
    /// the missing predecessor before declaring a gap.
    CatchingUp = 1,
    /// A gap / overflow / validation fault was declared; snapshot
    /// re-fetch is in progress (one attempt per pump, backoff between).
    Resyncing = 2,
    /// The resync attempt budget ran out. The feed still retries once
    /// per pump, but the staleness policy should assume the model is
    /// arbitrarily old.
    Stalled = 3,
}

impl FeedState {
    fn from_u8(raw: u8) -> FeedState {
        match raw {
            1 => FeedState::CatchingUp,
            2 => FeedState::Resyncing,
            3 => FeedState::Stalled,
            _ => FeedState::Live,
        }
    }
}

impl std::fmt::Display for FeedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FeedState::Live => "live",
            FeedState::CatchingUp => "catching-up",
            FeedState::Resyncing => "resyncing",
            FeedState::Stalled => "stalled",
        })
    }
}

/// Shared feed-health block, owned by the service
/// ([`NetEmbedService::feed_status`]) so the request path (the
/// staleness gate, response stamping) reads it without any reference
/// to the feed itself. All atomics; a service with no feed attached
/// reads as `Live` with zero lag, which disables the gate.
#[derive(Debug, Default)]
pub struct FeedStatus {
    state: AtomicU8,
    received: AtomicU64,
    applied: AtomicU64,
    duplicates: AtomicU64,
    reordered: AtomicU64,
    discarded: AtomicU64,
    rejected: AtomicU64,
    parked: AtomicU64,
    gap_resyncs: AtomicU64,
    resync_attempts: AtomicU64,
    last_applied_seq: AtomicU64,
    lag: AtomicU64,
}

impl FeedStatus {
    /// Current coarse feed state.
    pub fn state(&self) -> FeedState {
        FeedState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Current staleness lag in stream sequence units: the highest
    /// `next_seq` ever observed minus the cursor. Zero while live.
    pub fn lag(&self) -> u64 {
        self.lag.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> FeedTelemetry {
        FeedTelemetry {
            state: self.state(),
            received: self.received.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            gap_resyncs: self.gap_resyncs.load(Ordering::Relaxed),
            resync_attempts: self.resync_attempts.load(Ordering::Relaxed),
            last_applied_seq: self.last_applied_seq.load(Ordering::Relaxed),
            lag: self.lag(),
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// One snapshot of the feed-health counters (the `feed` block of
/// [`ServiceTelemetry`](crate::ServiceTelemetry)). See the module docs
/// for the balance identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedTelemetry {
    /// Coarse feed state.
    pub state: FeedState,
    /// Deltas ever pulled off the stream.
    pub received: u64,
    /// Deltas applied to the registry (each one bumped an epoch and
    /// recorded a dirty transition).
    pub applied: u64,
    /// Duplicate / stale-sequence deltas idempotently dropped.
    pub duplicates: u64,
    /// Applied deltas that arrived out of order and waited in the
    /// reorder buffer first (informational subset of `applied`).
    pub reordered: u64,
    /// Deltas discarded unapplied: superseded by a resync snapshot, or
    /// overflowing the reorder buffer.
    pub discarded: u64,
    /// Deltas that failed validation against the live model (each one
    /// triggered a resync).
    pub rejected: u64,
    /// Out-of-order deltas parked right now (gauge).
    pub parked: u64,
    /// Resync episodes ever declared (gap, overflow or validation
    /// fault).
    pub gap_resyncs: u64,
    /// Snapshot fetch attempts across all resync episodes (≥
    /// `gap_resyncs`; the excess is retries).
    pub resync_attempts: u64,
    /// Stream position of the last applied delta or snapshot.
    pub last_applied_seq: u64,
    /// Staleness lag gauge (see [`FeedStatus::lag`]).
    pub lag: u64,
}

impl FeedTelemetry {
    /// The feed ledger identity (module docs): every received delta is
    /// in exactly one of the four terminal buckets or still parked.
    pub fn balanced(&self) -> bool {
        self.received
            == self.applied + self.duplicates + self.discarded + self.rejected + self.parked
    }
}

/// Tuning knobs of one [`RegistryFeed`].
#[derive(Debug, Clone, Copy)]
pub struct FeedConfig {
    /// Out-of-order deltas held while waiting for a gap to fill; one
    /// more forces a resync. Default 32.
    pub reorder_buffer: usize,
    /// Pumps a non-empty reorder buffer may wait without progress
    /// before the gap is declared lost. Default 2.
    pub gap_patience: u32,
    /// Consecutive failed snapshot fetches before the feed reports
    /// [`FeedState::Stalled`]. Default 5.
    pub resync_attempts: u32,
    /// First retry backoff; doubles per consecutive failure. Default
    /// 50 ms.
    pub backoff_base: Duration,
    /// Backoff ceiling. Default 5 s.
    pub backoff_cap: Duration,
    /// Seed of the deterministic jitter mixed into each backoff (same
    /// seed + attempt number → same jitter, so recovery schedules are
    /// reproducible in tests and staggered across replicas in
    /// production by seeding differently).
    pub jitter_seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            reorder_buffer: 32,
            gap_patience: 2,
            resync_attempts: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0,
        }
    }
}

/// SplitMix64 — the deterministic jitter generator (no external RNG
/// dependency; same constant the chaos harness mixes seeds with).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delta-feed driver. Single-owner (`&mut self`); see the module
/// docs for the fault model and [`RegistryFeed::pump`] for the cycle
/// semantics.
pub struct RegistryFeed<S, R> {
    stream: S,
    snapshots: R,
    config: FeedConfig,
    /// Next expected stream position (`base_seq` of the next in-order
    /// delta).
    cursor: u64,
    /// Highest `next_seq` observed on any received delta — the far end
    /// of the staleness-lag gauge.
    frontier: u64,
    /// Out-of-order deltas keyed by `base_seq`.
    parked: BTreeMap<u64, RegistryDelta>,
    /// Consecutive pumps the parked buffer waited without progress.
    patience_spent: u32,
    /// Consecutive failed snapshot fetches in the current episode.
    attempts: u32,
    resyncing: bool,
    stalled: bool,
    /// Backoff the caller should honor before the next pump, when the
    /// last fetch failed.
    next_backoff: Option<Duration>,
}

impl<S: DeltaStream, R: SnapshotSource> RegistryFeed<S, R> {
    /// A feed starting at stream position 0 (the first expected delta
    /// has `base_seq == 0`; start elsewhere by resyncing or via a
    /// first delta that forces one).
    pub fn new(stream: S, snapshots: R, config: FeedConfig) -> Self {
        RegistryFeed {
            stream,
            snapshots,
            config,
            cursor: 0,
            frontier: 0,
            parked: BTreeMap::new(),
            patience_spent: 0,
            attempts: 0,
            resyncing: false,
            stalled: false,
            next_backoff: None,
        }
    }

    /// Next expected stream position.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The underlying delta stream — for drivers whose stream type is
    /// also the producer handle (e.g. a scripted `VecDeque` in tests
    /// or a demo harness).
    pub fn stream(&mut self) -> &mut S {
        &mut self.stream
    }

    /// How long the caller should wait before the next [`pump`]
    /// (exponential backoff + deterministic jitter), when the last
    /// snapshot fetch failed. The feed never sleeps itself.
    ///
    /// [`pump`]: RegistryFeed::pump
    pub fn next_retry_in(&self) -> Option<Duration> {
        self.next_backoff
    }

    /// One feed cycle: drain everything the stream has buffered (apply
    /// / drop / park per the module-docs fault model), account gap
    /// patience, run at most one snapshot fetch if a resync is due,
    /// then publish state + lag to `svc`'s [`FeedStatus`] and return
    /// the state.
    pub fn pump(&mut self, svc: &NetEmbedService) -> FeedState {
        let status = svc.feed_status();
        let mut progressed = false;
        let mut resync_due = self.resyncing || self.stalled;
        while let Some(delta) = self.stream.next_delta() {
            FeedStatus::bump(&status.received);
            self.frontier = self.frontier.max(delta.next_seq);
            if delta.next_seq <= self.cursor || delta.base_seq < self.cursor {
                // Fully behind the cursor: an idempotent re-delivery.
                // Partially behind (`base < cursor < next`): a range
                // that overlaps state we already hold — either way,
                // applying it again would double-apply a mutation.
                FeedStatus::bump(&status.duplicates);
                continue;
            }
            if delta.base_seq == self.cursor {
                progressed |= self.apply_in_order(svc, delta, &mut resync_due);
                continue;
            }
            // Out of order: park, unless the buffer is full (gap too
            // wide to bridge — resync) or the slot is already held
            // (re-delivered out-of-order duplicate).
            if self.parked.contains_key(&delta.base_seq) {
                FeedStatus::bump(&status.duplicates);
            } else if self.parked.len() >= self.config.reorder_buffer {
                FeedStatus::bump(&status.discarded);
                resync_due = true;
            } else {
                FeedStatus::bump(&status.reordered);
                self.parked.insert(delta.base_seq, delta);
            }
        }
        if progressed {
            self.patience_spent = 0;
        } else if !self.parked.is_empty() && !resync_due {
            // A gap is open and this pump brought no progress: spend
            // patience; past the budget the gap is declared lost.
            self.patience_spent += 1;
            if self.patience_spent > self.config.gap_patience {
                resync_due = true;
            }
        }
        if resync_due {
            self.resync(svc);
        }
        self.publish(status)
    }

    /// Apply an in-order delta, then drain the parked chain behind it.
    /// A validation fault flags a resync and stops the chain.
    fn apply_in_order(
        &mut self,
        svc: &NetEmbedService,
        delta: RegistryDelta,
        resync_due: &mut bool,
    ) -> bool {
        let status = svc.feed_status();
        let mut progressed = false;
        let mut next = Some(delta);
        while let Some(delta) = next {
            if !self.apply_one(svc, &delta) {
                FeedStatus::bump(&status.rejected);
                *resync_due = true;
                break;
            }
            FeedStatus::bump(&status.applied);
            status
                .last_applied_seq
                .store(self.cursor, Ordering::Relaxed);
            progressed = true;
            next = self.parked.remove(&self.cursor);
        }
        progressed
    }

    /// Validate + apply one delta whose `base_seq` equals the cursor;
    /// `true` advanced the cursor to its `next_seq`.
    fn apply_one(&mut self, svc: &NetEmbedService, delta: &RegistryDelta) -> bool {
        let checked = match svc.registry().model(&delta.host) {
            Some(model) => validate(&model, delta),
            None => Err(DeltaFault::UnknownHost),
        };
        if checked.is_err() {
            return false;
        }
        // Single-writer contract: the feed is the only mutator of the
        // hosts it drives, so the model validated above is the model
        // the closure below receives.
        svc.registry()
            .update_dirty(&delta.host, delta.dirty.clone(), |net| {
                apply_mutation(net, &delta.mutation)
            });
        self.cursor = delta.next_seq;
        true
    }

    /// One snapshot fetch attempt (a new episode bumps `gap_resyncs`
    /// first). Success re-registers every snapshot model, jumps the
    /// cursor, discards superseded parked deltas and drains whatever
    /// parked chain is now in order; failure computes the next backoff
    /// and, past the attempt budget, marks the feed stalled.
    fn resync(&mut self, svc: &NetEmbedService) {
        let status = svc.feed_status();
        if !self.resyncing && !self.stalled {
            FeedStatus::bump(&status.gap_resyncs);
        }
        self.resyncing = true;
        FeedStatus::bump(&status.resync_attempts);
        self.attempts += 1;
        match self.snapshots.fetch() {
            Some(snap) => {
                for (name, model) in snap.models {
                    svc.registry().register(&name, model);
                }
                self.cursor = self.cursor.max(snap.seq);
                self.frontier = self.frontier.max(self.cursor);
                status
                    .last_applied_seq
                    .store(self.cursor, Ordering::Relaxed);
                let before = self.parked.len();
                let cursor = self.cursor;
                self.parked.retain(|&base, _| base >= cursor);
                status
                    .discarded
                    .fetch_add((before - self.parked.len()) as u64, Ordering::Relaxed);
                // The gap may sit exactly at the snapshot boundary:
                // drain the parked chain that is now in order.
                let mut due = false;
                if let Some(delta) = self.parked.remove(&self.cursor) {
                    self.apply_in_order(svc, delta, &mut due);
                }
                self.resyncing = due;
                self.stalled = false;
                self.attempts = 0;
                self.next_backoff = None;
                self.patience_spent = 0;
            }
            None => {
                self.next_backoff = Some(self.backoff_for(self.attempts));
                if self.attempts >= self.config.resync_attempts {
                    self.stalled = true;
                }
            }
        }
    }

    /// Backoff before retry number `attempt + 1`: base × 2^(attempt−1),
    /// capped, plus a deterministic jitter of up to 25% derived from
    /// the seed and the attempt number.
    fn backoff_for(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.config.backoff_cap);
        let span = (exp.as_nanos() / 4) as u64;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(self.config.jitter_seed ^ u64::from(attempt)) % span
        };
        exp + Duration::from_nanos(jitter)
    }

    /// Publish state + lag after a pump.
    fn publish(&self, status: &FeedStatus) -> FeedState {
        let state = if self.stalled {
            FeedState::Stalled
        } else if self.resyncing {
            FeedState::Resyncing
        } else if !self.parked.is_empty() {
            FeedState::CatchingUp
        } else {
            FeedState::Live
        };
        status.state.store(state as u8, Ordering::Relaxed);
        status
            .parked
            .store(self.parked.len() as u64, Ordering::Relaxed);
        status
            .lag
            .store(self.frontier.saturating_sub(self.cursor), Ordering::Relaxed);
        state
    }
}

impl<S, R> std::fmt::Debug for RegistryFeed<S, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryFeed")
            .field("cursor", &self.cursor)
            .field("frontier", &self.frontier)
            .field("parked", &self.parked.len())
            .field("resyncing", &self.resyncing)
            .field("stalled", &self.stalled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelEpoch;
    use netgraph::Direction;
    use std::collections::VecDeque;

    fn host(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        let ids: Vec<_> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            let e = g.add_edge(w[0], w[1]);
            g.set_edge_attr(e, "avgDelay", 10.0);
        }
        for &v in &ids {
            g.set_node_attr(v, "cpu", 8.0);
        }
        g
    }

    fn attr_delta(seq: u64, node: u32, value: f64) -> RegistryDelta {
        RegistryDelta {
            host: "m".to_string(),
            base_seq: seq,
            next_seq: seq + 1,
            mutation: DeltaMutation::SetNodeAttr {
                node,
                attr: "cpu".to_string(),
                value: AttrValue::Num(value),
            },
            dirty: DirtySet::from_ids([node]),
        }
    }

    fn no_snapshots() -> impl SnapshotSource {
        || -> Option<FeedSnapshot> { panic!("unexpected snapshot fetch") }
    }

    fn svc_with_host() -> NetEmbedService {
        let svc = NetEmbedService::new();
        svc.registry().register("m", host(4));
        svc
    }

    #[test]
    fn in_order_deltas_apply_and_stay_live() {
        let svc = svc_with_host();
        let stream: VecDeque<_> = (0..3)
            .map(|i| attr_delta(i, i as u32, 1.0 + i as f64))
            .collect();
        let mut feed = RegistryFeed::new(stream, no_snapshots(), FeedConfig::default());
        assert_eq!(feed.pump(&svc), FeedState::Live);
        let t = svc.feed_status().snapshot();
        assert_eq!((t.received, t.applied, t.lag), (3, 3, 0));
        assert_eq!(t.last_applied_seq, 3);
        assert!(t.balanced());
        let model = svc.registry().model("m").unwrap();
        for i in 0..3u32 {
            assert_eq!(
                model.node_attr_by_name(NodeId(i), "cpu"),
                Some(&AttrValue::Num(1.0 + f64::from(i)))
            );
        }
        // Each applied delta recorded its dirty transition.
        let e = svc.registry().epoch("m").unwrap();
        assert_eq!(
            svc.registry().dirty_between("m", ModelEpoch(e.0 - 3), e),
            Some(DirtySet::from_ids([0, 1, 2]))
        );
    }

    #[test]
    fn duplicates_and_stale_sequences_drop_idempotently() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        stream.push_back(attr_delta(0, 0, 1.0));
        stream.push_back(attr_delta(0, 0, 99.0)); // exact re-delivery (different payload!)
        stream.push_back(attr_delta(1, 1, 2.0));
        stream.push_back(attr_delta(0, 0, 99.0)); // stale
        let mut feed = RegistryFeed::new(stream, no_snapshots(), FeedConfig::default());
        assert_eq!(feed.pump(&svc), FeedState::Live);
        let t = svc.feed_status().snapshot();
        assert_eq!((t.applied, t.duplicates), (2, 2));
        assert!(t.balanced());
        // The duplicate's divergent payload never re-applied.
        let model = svc.registry().model("m").unwrap();
        assert_eq!(
            model.node_attr_by_name(NodeId(0), "cpu"),
            Some(&AttrValue::Num(1.0))
        );
    }

    #[test]
    fn reordered_deltas_park_then_apply_in_sequence_order() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        stream.push_back(attr_delta(2, 2, 3.0));
        stream.push_back(attr_delta(1, 1, 2.0));
        stream.push_back(attr_delta(0, 0, 1.0));
        let mut feed = RegistryFeed::new(stream, no_snapshots(), FeedConfig::default());
        assert_eq!(
            feed.pump(&svc),
            FeedState::Live,
            "chain drained in one pump"
        );
        let t = svc.feed_status().snapshot();
        assert_eq!((t.applied, t.reordered, t.parked), (3, 2, 0));
        assert!(t.balanced());
        assert_eq!(feed.cursor(), 3);
    }

    #[test]
    fn open_gap_surfaces_catching_up_within_patience() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        stream.push_back(attr_delta(1, 1, 2.0)); // seq 0 missing
        let mut feed = RegistryFeed::new(stream, no_snapshots(), FeedConfig::default());
        assert_eq!(feed.pump(&svc), FeedState::CatchingUp);
        assert_eq!(svc.feed_status().lag(), 2, "frontier 2, cursor 0");
        assert_eq!(svc.feed_status().snapshot().parked, 1);
        assert!(svc.feed_status().snapshot().balanced());
    }

    #[test]
    fn exhausted_patience_declares_a_gap_and_resyncs() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        stream.push_back(attr_delta(1, 1, 2.0)); // seq 0 lost forever
        let fresh = host(4);
        let snapshots = move || -> Option<FeedSnapshot> {
            Some(FeedSnapshot {
                seq: 1,
                models: vec![("m".to_string(), fresh.clone())],
            })
        };
        let config = FeedConfig {
            gap_patience: 1,
            ..FeedConfig::default()
        };
        let mut feed = RegistryFeed::new(stream, snapshots, config);
        assert_eq!(feed.pump(&svc), FeedState::CatchingUp, "patience 1 of 1");
        // Second pump without progress exceeds patience → resync; the
        // snapshot is at seq 1, so the parked seq-1 delta drains and
        // the feed comes back live in the same pump.
        assert_eq!(feed.pump(&svc), FeedState::Live);
        let t = svc.feed_status().snapshot();
        assert_eq!(t.gap_resyncs, 1);
        assert_eq!(t.resync_attempts, 1);
        assert_eq!(t.applied, 1, "the parked delta applied after resync");
        assert_eq!(t.reordered, 1);
        assert!(t.balanced());
        assert_eq!(feed.cursor(), 2);
    }

    #[test]
    fn reorder_buffer_overflow_forces_resync() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        // Four out-of-order deltas against a buffer of two: the third
        // and fourth overflow (discarded) and flag a resync.
        for seq in [2u64, 3, 4, 5] {
            stream.push_back(attr_delta(seq, 0, seq as f64));
        }
        let fresh = host(4);
        let snapshots = move || -> Option<FeedSnapshot> {
            Some(FeedSnapshot {
                seq: 6,
                models: vec![("m".to_string(), fresh.clone())],
            })
        };
        let config = FeedConfig {
            reorder_buffer: 2,
            ..FeedConfig::default()
        };
        let mut feed = RegistryFeed::new(stream, snapshots, config);
        assert_eq!(feed.pump(&svc), FeedState::Live, "resync in the same pump");
        let t = svc.feed_status().snapshot();
        assert_eq!(t.gap_resyncs, 1);
        // 2 overflowed + 2 parked-then-superseded by the seq-6 snapshot.
        assert_eq!(t.discarded, 4);
        assert_eq!(t.applied, 0);
        assert!(t.balanced());
        assert_eq!(feed.cursor(), 6);
    }

    #[test]
    fn validation_failure_rejects_and_resyncs() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        // Node 9 does not exist in the 4-node model.
        stream.push_back(attr_delta(0, 9, 1.0));
        let fresh = host(4);
        let snapshots = move || -> Option<FeedSnapshot> {
            Some(FeedSnapshot {
                seq: 1,
                models: vec![("m".to_string(), fresh.clone())],
            })
        };
        let mut feed = RegistryFeed::new(stream, snapshots, FeedConfig::default());
        assert_eq!(feed.pump(&svc), FeedState::Live);
        let t = svc.feed_status().snapshot();
        assert_eq!((t.rejected, t.gap_resyncs), (1, 1));
        assert!(t.balanced());
    }

    #[test]
    fn under_declared_dirty_set_is_a_validation_failure() {
        let svc = svc_with_host();
        let model = svc.registry().model("m").unwrap();
        let mut delta = attr_delta(0, 1, 1.0);
        delta.dirty = DirtySet::from_ids([0]); // claims node 0, touches node 1
        assert_eq!(validate(&model, &delta), Err(DeltaFault::DirtyUndeclared));
        // Over-declaring is fine (conservative).
        delta.dirty = DirtySet::from_ids([0, 1, 2]);
        assert_eq!(validate(&model, &delta), Ok(()));
    }

    #[test]
    fn tombstone_removals_and_topology_adds_validate_and_apply() {
        let svc = svc_with_host();
        let deltas = [
            RegistryDelta {
                host: "m".to_string(),
                base_seq: 0,
                next_seq: 1,
                mutation: DeltaMutation::AddNode {
                    name: "n4".to_string(),
                },
                dirty: DirtySet::from_ids([4]),
            },
            RegistryDelta {
                host: "m".to_string(),
                base_seq: 1,
                next_seq: 2,
                mutation: DeltaMutation::AddEdge { src: 3, dst: 4 },
                dirty: DirtySet::from_ids([3, 4]),
            },
            RegistryDelta {
                host: "m".to_string(),
                base_seq: 2,
                next_seq: 3,
                mutation: DeltaMutation::RemoveNode { node: 0 },
                dirty: DirtySet::from_ids([0]),
            },
            RegistryDelta {
                host: "m".to_string(),
                base_seq: 3,
                next_seq: 4,
                mutation: DeltaMutation::RemoveEdge { src: 3, dst: 4 },
                dirty: DirtySet::from_ids([3, 4]),
            },
            RegistryDelta {
                host: "m".to_string(),
                base_seq: 4,
                next_seq: 5,
                mutation: DeltaMutation::ReservationCommit {
                    deductions: vec![(1, "cpu".to_string(), 3.0)],
                },
                dirty: DirtySet::from_ids([1]),
            },
        ];
        let stream: VecDeque<_> = deltas.into_iter().collect();
        let mut feed = RegistryFeed::new(stream, no_snapshots(), FeedConfig::default());
        assert_eq!(feed.pump(&svc), FeedState::Live);
        let t = svc.feed_status().snapshot();
        assert_eq!(t.applied, 5);
        assert!(t.balanced());
        let model = svc.registry().model("m").unwrap();
        assert_eq!(model.node_count(), 5);
        let e = model.find_edge(NodeId(3), NodeId(4)).unwrap();
        assert_eq!(
            model.edge_attr_by_name(e, crate::monitor::UP_ATTR),
            Some(&AttrValue::Bool(false)),
            "removed edge is tombstoned"
        );
        assert_eq!(
            model.node_attr_by_name(NodeId(0), crate::monitor::UP_ATTR),
            Some(&AttrValue::Bool(false)),
            "removed node is tombstoned"
        );
        assert_eq!(
            model.node_attr_by_name(NodeId(1), "cpu"),
            Some(&AttrValue::Num(5.0)),
            "reservation deducted"
        );
    }

    #[test]
    fn failed_fetches_back_off_deterministically_then_stall() {
        let svc = svc_with_host();
        let mut stream = VecDeque::new();
        stream.push_back(attr_delta(5, 0, 1.0)); // unbridgeable gap
                                                 // The source fails every fetch until the test flips the switch.
        let recovered = std::rc::Rc::new(std::cell::Cell::new(false));
        let switch = recovered.clone();
        let fresh = host(4);
        let snapshots = move || -> Option<FeedSnapshot> {
            switch.get().then(|| FeedSnapshot {
                seq: 6,
                models: vec![("m".to_string(), fresh.clone())],
            })
        };
        let config = FeedConfig {
            gap_patience: 0,
            resync_attempts: 3,
            jitter_seed: 7,
            ..FeedConfig::default()
        };
        let mut feed = RegistryFeed::new(stream, snapshots, config);
        // Pump 1: parks; patience 0 is immediately exceeded → attempt 1
        // fails.
        assert_eq!(feed.pump(&svc), FeedState::Resyncing);
        let b1 = feed.next_retry_in().expect("backoff after failed fetch");
        assert_eq!(feed.pump(&svc), FeedState::Resyncing);
        let b2 = feed.next_retry_in().unwrap();
        assert_eq!(feed.pump(&svc), FeedState::Stalled, "attempt budget spent");
        let b3 = feed.next_retry_in().unwrap();
        // Exponential shape with ≤ 25% jitter: attempt n sits in
        // [base·2ⁿ⁻¹, 1.25·base·2ⁿ⁻¹).
        for (i, b) in [b1, b2, b3].into_iter().enumerate() {
            let floor = config.backoff_base * (1 << i);
            assert!(
                b >= floor && b < floor + floor / 4,
                "attempt {}: {b:?}",
                i + 1
            );
        }
        // The schedule is a pure function of (seed, attempt).
        let replay = RegistryFeed::new(
            VecDeque::<RegistryDelta>::new(),
            || -> Option<FeedSnapshot> { None },
            config,
        );
        assert_eq!(replay.backoff_for(1), b1);
        assert_eq!(replay.backoff_for(2), b2);
        assert_eq!(replay.backoff_for(3), b3);
        assert_eq!(
            svc.feed_status().snapshot().resync_attempts,
            3,
            "one fetch per pump"
        );
        assert_eq!(svc.feed_status().snapshot().gap_resyncs, 1, "one episode");
        // A stalled feed still retries: the moment the source recovers,
        // the next pump brings it back.
        recovered.set(true);
        assert_eq!(feed.pump(&svc), FeedState::Live);
        assert!(feed.next_retry_in().is_none());
        assert!(svc.feed_status().snapshot().balanced());
    }

    #[test]
    fn unknown_host_rejects_and_snapshot_restores_it() {
        let svc = NetEmbedService::new(); // nothing registered
        let mut stream = VecDeque::new();
        stream.push_back(attr_delta(0, 0, 1.0));
        let fresh = host(4);
        let snapshots = move || -> Option<FeedSnapshot> {
            Some(FeedSnapshot {
                seq: 1,
                models: vec![("m".to_string(), fresh.clone())],
            })
        };
        let mut feed = RegistryFeed::new(stream, snapshots, FeedConfig::default());
        assert_eq!(feed.pump(&svc), FeedState::Live);
        assert!(
            svc.registry().model("m").is_some(),
            "snapshot registered it"
        );
        let t = svc.feed_status().snapshot();
        assert_eq!((t.rejected, t.gap_resyncs), (1, 1));
        assert!(t.balanced());
    }
}

//! # service — the NETEMBED mapping service
//!
//! §III of the paper describes NETEMBED as a long-running service
//! (Figure 1) with three components:
//!
//! 1. a **model of the real network**, maintained by a monitoring service
//!    or resource manager → the epoch-versioned
//!    [`registry::ModelRegistry`] (every update bumps a
//!    [`ModelEpoch`]; readers get `(snapshot, epoch)` pairs) plus the
//!    [`monitor::MonitorSim`] churn simulator;
//! 2. the **mapping service** where applications submit queries and get
//!    back lists of possible mappings → [`NetEmbedService`]. The
//!    session-oriented entry point is [`NetEmbedService::prepare`]: a
//!    [`PreparedQuery`] parses and lints the constraint once, memoizes
//!    filter builds in the service-wide [`cache::FilterCache`] keyed by
//!    `(host, model epoch, query fingerprint, constraint)`, and leases a
//!    warm scratch + persistent worker pool so repeated runs are
//!    build-free, allocation-free and thread-spawn-free.
//!    [`NetEmbedService::submit`] / [`NetEmbedService::submit_batch`]
//!    are thin wrappers over it, and the interactive
//!    requirement-adjustment loop is [`NetEmbedService::negotiate`];
//! 3. an optional **resource reservation system** that adjusts the model
//!    when mappings are allocated → [`reservation::ReservationManager`].
//!    A reservation commit goes through [`ModelRegistry::update`], so it
//!    bumps the host's epoch and thereby invalidates exactly that host's
//!    cached filters — in-flight prepared queries pick up the new model
//!    (and rebuild once) on their next run.
//!
//! Every mapping handed to a client is re-validated with
//! [`netembed::check_mapping`] against the same compiled problem the
//! search used — the service never returns an embedding it cannot prove
//! feasible against the current model.
//!
//! ## Request lifecycle
//!
//! A request travels through four amortization layers, each reusing
//! everything the previous one established:
//!
//! 1. **submit** — [`NetEmbedService::submit`] (or a client holding a
//!    [`PreparedQuery`]) names a host, a query network and a §VI-B
//!    constraint. Unknown hosts and malformed/ill-typed constraints
//!    fail here, before any queueing or search.
//! 2. **prepare** — the constraint is parsed + type-linted once, the
//!    query fingerprinted once, and the handle binds to a registry
//!    snapshot `(Arc<Network>, ModelEpoch)`; the problem is compiled
//!    once per snapshot and serves both the search and the final
//!    mapping re-verification.
//! 3. **planner** (optional, [`NetEmbedService::planner`]) — concurrent
//!    clients enqueue [`planner::PlannedRequest`]s. The request's
//!    grouping key `(host, epoch, query fingerprint, constraint)` —
//!    exactly a [`FilterKey`] — is **hashed onto one of N dispatch
//!    shards** ([`NetEmbedService::planner_shards`]); within its shard,
//!    pending requests with the same key coalesce into one group that
//!    is dispatched through **one** prepared pipeline: one parse/lint,
//!    one compiled problem, one filter build or cache hit (pinned for
//!    the group), one leased scratch. Per-request deadlines and
//!    failures stay per-request. Dispatch is waiter-driven and
//!    serialized **per shard**, so same-key bursts coalesce by
//!    backpressure (group commit) with no timing windows, while
//!    distinct-key groups in distinct shards dispatch concurrently,
//!    each on its own leased scratch/pool; see [`planner`] for the
//!    hash → shard → group → dispatch pipeline, the fairness/ordering
//!    guarantees (per-shard FIFO, bounded dispatch bursts) and the
//!    `Σ filter_cache_hits + Σ coalesced_requests == N − 1` counter
//!    identity.
//! 4. **pool** — the run executes on a leased warm [`EmbedScratch`]
//!    whose persistent worker pool parks threads between runs
//!    ([`SearchStats::pool_reuse`](netembed::SearchStats) proves warm
//!    runs spawn nothing); filter builds miss into the shared
//!    [`cache::FilterCache`], where concurrent misses on one key are
//!    deduplicated through an in-flight build table (second miss waits
//!    for the winner instead of rebuilding —
//!    [`SearchStats::dedup_waits`](netembed::SearchStats)).
//!
//! Beside the pool layer sits the **HIERARCHY** layer, engaged when a
//! request's [`Options::hierarchy`](netembed::Options) is set: the
//! host substrate is coarsened once into a multilevel
//! [`SubstrateHierarchy`](netembed::SubstrateHierarchy) — cached per
//! `(host, epoch, spec)` in the service's [`cache::HierarchyCache`],
//! warmable ahead of traffic via
//! [`NetEmbedService::warm_hierarchy`] — and each run refines
//! top-down: sound abstract constraint verdicts over aggregated
//! super-node bounds prune whole subtrees, and the exact filter is
//! built only inside the survivors
//! ([`FilterMatrix::build_restricted`](netembed::FilterMatrix)).
//! Solution sets are identical to the flat path; on large substrates
//! only a fraction of the `O(|VQ|·|VR|)` admission matrix is ever
//! examined (`SearchStats::hier_expanded_cells` vs
//! `hier_full_cells`). One coarsening serves every query and every
//! distinct constraint against that host snapshot, which is exactly
//! the amortization the filter cache cannot offer (its key includes
//! the query fingerprint and constraint). Hierarchical runs bypass
//! the filter cache on purpose: the restricted matrix is a product of
//! per-query refinement, and memoizing it under the flat key would
//! collide full and restricted builds.
//!
//! Underneath the four request layers sits the **FEED** layer: the
//! model side of every request. In production shape, registry
//! mutations arrive from an external watch stream consumed by a
//! [`feed::RegistryFeed`], which tolerates duplicated, reordered and
//! lost deltas (bounded reorder buffer, idempotent drops, snapshot
//! resync with backoff — see [`feed`]) and records each applied
//! delta's dirty-node set per epoch transition
//! ([`ModelRegistry::dirty_between`]). The request layers consume the
//! feed twice: before resolving a filter key, the service classifies
//! the accumulated dirty window against the superseded cached filter —
//! an empty window *promotes* the entry in place, a removal-only window
//! *patches* a clone with
//! [`FilterMatrix::patch`](netembed::FilterMatrix::patch) and re-keys
//! it, and a window that adds a feasible candidate falls back to a full
//! rebuild ([`FilterCache::try_patch`]; see the cache module's "Epoch
//! patching" docs) — and the admission layer reads the feed's health
//! for the staleness gate below.
//!
//! ### Staleness and degradation
//!
//! While a feed is degraded (anything but
//! [`FeedState::Live`](feed::FeedState)), the service's
//! [`StalenessPolicy`] governs serving:
//!
//! * [`StalenessPolicy::ServeStale`]` { max_lag }` — answers keep
//!   coming from the last good model, but every response is stamped
//!   with a [`Staleness`] marker (`lag` + the epoch served, mirrored
//!   into [`SearchStats::staleness_lag`](netembed::SearchStats)); once
//!   the feed's lag exceeds `max_lag`, submits shed as
//!   [`ShedReason::StaleModel`] through the normal admission
//!   machinery. This is the default, with `max_lag = u64::MAX`: a
//!   service with no feed attached never sheds and never stamps.
//! * [`StalenessPolicy::Block`] — any degradation sheds immediately:
//!   correctness-critical callers prefer a deterministic
//!   [`ServiceError::Overloaded`]`(StaleModel)` (or a degraded
//!   `Inconclusive`, per [`ShedMode`]) over a possibly-stale answer.
//!
//! The gate is enforced at both submit paths — planner admission and
//! the direct [`PreparedQuery`] path — and `tests/feed.rs` +
//! `tests/chaos.rs` pin the trichotomy: every response is fresh,
//! `Staleness`-marked within `max_lag`, or a deterministic shed.
//!
//! ## Admission, priority and load shedding
//!
//! The queues above are bounded by a per-service
//! [`AdmissionPolicy`] (part of [`ServiceConfig`], default:
//! unbounded). Enforcement happens at the two places a request can
//! start waiting:
//!
//! * **`Planner::submit`** — before a request takes a queue slot in
//!   its dispatch shard it must clear four checks, in order: its
//!   deadline must survive the estimated queue wait (the shard's
//!   pending groups × that shard's EWMA of recent group dispatch times
//!   — a request that would die in the queue is answered *now* as a
//!   timed-out `Inconclusive` instead of wasting a slot); the
//!   service-wide gauge must be under `max_total_queue_depth` (if
//!   set); the shard's queue depth must be under `max_queue_depth`;
//!   and its coalescing group must be under `max_group_size`. When a
//!   per-shard or per-group bound is hit, admission first tries to
//!   **evict** a strictly lower-[`Priority`] queued request of the
//!   same shard (newest arrival among the lowest priority) to make
//!   room — so reservation commits and monitor re-checks submitted at
//!   [`Priority::High`] displace speculative [`Priority::Low`] probes,
//!   never the other way around; the global cap always sheds the
//!   incoming request (lanes never touch each other's queues). The
//!   displaced (or refused) request resolves per
//!   [`ShedMode`]: a deterministic
//!   [`ServiceError::Overloaded`] ([`ShedMode::Reject`]) or a fast
//!   timed-out `Inconclusive` ([`ShedMode::DegradeInconclusive`]).
//! * **`FilterCache::fetch_or_build`** — at most `max_dedup_waiters`
//!   threads may block on one in-flight filter build; the excess is
//!   shed the same way instead of convoying behind a single build.
//!
//! Priorities enter through [`Planner::submit_with`];
//! [`Planner::submit`] is `Normal`. Shedding never reorders accepted
//! work: admitted requests produce bitwise-identical results to
//! isolated submits, because admission only decides *whether* a
//! request queues, never *how* it runs.
//!
//! ### Ticket lifecycle (including shed paths)
//!
//! ```text
//!                         submit / submit_with
//!                                │
//!                                ▼
//!                      ROUTED  hash(FilterKey) % N picks the
//!                              dispatch shard; every later state,
//!                              counter and wakeup stays in that lane
//!                                │
//!                ┌───────────────┼─────────────────────┐
//!                │ (admitted)    │ (bound hit, no       │ (deadline
//!                │               │  victim — or model   │  hopeless)
//!                │               │  feed degraded:      │
//!                │               │  StaleModel)         │
//!                ▼               ▼                      ▼
//!            QUEUED         SHED-AT-SUBMIT        SHED-HOPELESS
//!       shard gauge += 1   Reject ⇒ Err(Overloaded)  always resolves
//!                │         Degrade ⇒ pre-resolved    as pre-resolved
//!                │           timed-out Inconclusive  timed-out ticket
//!    ┌───────────┼──────────────┐
//!    │           │              │ (higher-priority arrival
//!    │           │              │  in this shard, this is
//!    │           │              │  the victim)
//!    │           │              ▼
//!    │           │          EVICTED   gauge −= 1, accepted → shed;
//!    │           │                    resolves per ShedMode
//!    │           │ (ticket dropped while queued)
//!    │           ▼
//!    │       UNLINKED    gauge −= 1
//!    │ (a waiter of this shard becomes its dispatcher and pops the
//!    │  group; a burst beyond max_dispatch_burst re-queues its
//!    │  remainder behind the shard's waiting groups)
//!    ▼
//! DISPATCHING ── ticket dropped mid-dispatch ──► CANCEL-MARKED
//!    │                                           gauge −= 1; the
//!    │                                           dispatcher's cancel
//!    │                                           probe aborts dedup
//!    │                                           waits for this member
//!    ▼
//! DELIVERED      gauge −= 1 (skipped if a cancel mark is consumed:
//!                the slot was already released at cancel time)
//! ```
//!
//! All gauges and counters above are the routed shard's. Every path
//! decrements that shard's queue-depth gauge exactly once, so the
//! ledger identity `Σaccepted + Σshed == Σsubmitted` (and gauge = 0 at
//! drain) holds **per shard** under arbitrary interleavings — and
//! therefore also in the global roll-up
//! ([`ServiceTelemetry::shards`]) — `tests/chaos.rs` hammers exactly
//! this at both granularities.
//!
//! [`NetEmbedService::telemetry`] exposes the parked-scratch/pool
//! counters plus the overload block (queue-depth gauge, per-reason
//! shed counters, queue-wait and dispatch-latency histograms) for
//! capacity planning.

pub mod admission;
pub mod cache;
pub mod feed;
pub mod monitor;
pub mod negotiate;
pub mod partition;
pub mod planner;
pub mod prepared;
pub mod registry;
pub mod reservation;
pub mod schedule;

pub use admission::{
    AdmissionPolicy, FaultPlan, Priority, ServiceConfig, ShedCounters, ShedMode, ShedReason,
    StalenessPolicy,
};
pub use cache::{FilterCache, FilterKey, HierarchyCache, HierarchyKey, PatchDecision};
pub use feed::{
    DeltaMutation, DeltaStream, FeedConfig, FeedSnapshot, FeedState, FeedStatus, FeedTelemetry,
    RegistryDelta, RegistryFeed, SnapshotSource,
};
pub use monitor::{MonitorParams, MonitorSim};
pub use negotiate::{negotiate, NegotiationOutcome};
pub use partition::{Locality, PartitionedHost, PartitionedResponse};
pub use planner::{PlannedRequest, Planner, Ticket};
pub use prepared::PreparedQuery;
pub use registry::{DirtySet, ModelEpoch, ModelRegistry};
pub use reservation::{Reservation, ReservationError, ReservationManager};
pub use schedule::{Allocation, ScheduleError, ScheduledEmbedding, Scheduler, Tick};

use netembed::{
    Deadline, EmbedScratch, HistogramSnapshot, Mapping, Options, Outcome, PatchOutcome, Problem,
    ProblemError, SearchStats,
};
use netgraph::Network;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome bits of one [`NetEmbedService::repair_filter`] call, stamped
/// into the requesting batch's [`SearchStats`] (`patches` /
/// `patch_rebuilds`) so per-request telemetry shows which epoch windows
/// were repaired in place and which forced a rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FilterRepair {
    /// A superseded cached filter was cloned, patched in place and
    /// re-keyed for this window (a full rebuild saved).
    pub patched: bool,
    /// The window added a feasible candidate (or the patch could not
    /// run): the normal miss/build path follows.
    pub patch_rebuild: bool,
}

/// A query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Name of the hosting-network model to embed into.
    pub host: String,
    /// The query (virtual) network.
    pub query: Network,
    /// Constraint expression source (§VI-B).
    pub constraint: String,
    /// Engine options (algorithm, mode, timeout, …).
    pub options: Options,
}

/// A batch of embedding runs over one `(host, query, constraint)` triple
/// — e.g. thousands of RWB samples with different seeds, or one query
/// swept across modes/orders/thread counts. The whole batch runs on one
/// model snapshot through a [`PreparedQuery`], so the problem is
/// compiled once and one filter build (or cache hit) plus one leased
/// scratch serve every run (see [`NetEmbedService::submit_batch`]).
#[derive(Debug, Clone)]
pub struct BatchQueryRequest {
    /// Name of the hosting-network model to embed into.
    pub host: String,
    /// The query (virtual) network, shared by every run.
    pub query: Network,
    /// Constraint expression source, shared by every run.
    pub constraint: String,
    /// One engine-options set per run.
    pub runs: Vec<Options>,
}

/// Marker stamped on responses computed while the model feed was
/// degraded (see the crate docs' "Staleness and degradation"): the
/// answer is correct against `epoch`, but `lag` newer stream deltas had
/// not been applied when it was served. `None` on a response means the
/// model was fresh (or no feed is attached — the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staleness {
    /// Feed lag at serve time, in stream sequence units
    /// ([`FeedStatus::lag`]).
    pub lag: u64,
    /// The (possibly stale) model epoch the answer was computed
    /// against.
    pub epoch: ModelEpoch,
}

/// A service response: the §VII-E-classified outcome plus statistics.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Classified result.
    pub outcome: Outcome,
    /// Search statistics. Service-level extras:
    /// [`SearchStats::filter_cache_hits`] is 1 when the run reused a
    /// memoized filter, and [`SearchStats::pool_reuse`] counts warm
    /// worker-pool threads a parallel run found.
    pub stats: SearchStats,
    /// `Some` when the serving model was stale under a degraded feed
    /// ([`StalenessPolicy::ServeStale`]); mirrored into
    /// [`SearchStats::staleness_lag`](netembed::SearchStats) so batch
    /// roll-ups keep the worst lag.
    pub staleness: Option<Staleness>,
}

impl QueryResponse {
    /// The mappings found (empty for inconclusive results).
    pub fn mappings(&self) -> &[Mapping] {
        self.outcome.mappings()
    }
}

/// Why a constraint was rejected up front (§VI-B language checks run at
/// [`NetEmbedService::prepare`], before any search).
#[derive(Debug)]
pub enum ConstraintFault {
    /// The source text does not parse.
    Parse(cexpr::ParseError),
    /// It parses, but the static type lint found a definite error.
    Type(cexpr::TypeError),
}

impl fmt::Display for ConstraintFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintFault::Parse(e) => write!(f, "constraint parse error: {e}"),
            ConstraintFault::Type(e) => write!(f, "{e}"),
        }
    }
}

/// Service-level errors.
#[derive(Debug)]
pub enum ServiceError {
    /// No model registered under the requested name.
    UnknownHost(String),
    /// The embedding engine rejected the problem.
    Problem(ProblemError),
    /// A produced mapping failed independent verification — an engine bug
    /// surfaced; the response is withheld.
    VerificationFailed(netembed::VerifyError),
    /// GraphML parse failure (when loading models from documents).
    Graphml(graphml::GraphmlError),
    /// The constraint was rejected by the up-front checks: it either
    /// fails to parse or fails the static type lint (§VI-B language).
    BadConstraint(ConstraintFault),
    /// The request's run panicked inside the service (an engine
    /// invariant violation). Carried as an error instead of unwinding
    /// so one request's panic cannot strand its planner group-mates;
    /// the payload is the panic message.
    Internal(String),
    /// The request was shed by the service's [`AdmissionPolicy`] under
    /// [`ShedMode::Reject`]: the payload says which bound refused it.
    /// Deterministic and retryable — nothing was queued or run.
    Overloaded(ShedReason),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownHost(h) => write!(f, "unknown hosting network `{h}`"),
            ServiceError::Problem(e) => write!(f, "{e}"),
            ServiceError::VerificationFailed(e) => {
                write!(
                    f,
                    "internal error: produced mapping failed verification: {e}"
                )
            }
            ServiceError::Graphml(e) => write!(f, "{e}"),
            ServiceError::BadConstraint(e) => write!(f, "{e}"),
            ServiceError::Internal(msg) => write!(f, "internal error: run panicked: {msg}"),
            ServiceError::Overloaded(reason) => {
                write!(f, "request shed under overload: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ProblemError> for ServiceError {
    fn from(e: ProblemError) -> Self {
        ServiceError::Problem(e)
    }
}

impl From<graphml::GraphmlError> for ServiceError {
    fn from(e: graphml::GraphmlError) -> Self {
        ServiceError::Graphml(e)
    }
}

/// The up-front §VI-B constraint checks shared by
/// [`NetEmbedService::prepare`] and
/// [`PreparedQuery::reconstrain`]: parse, then static type lint.
pub(crate) fn parse_and_lint(constraint: &str) -> Result<cexpr::Expr, ServiceError> {
    let expr = cexpr::parse(constraint)
        .map_err(|e| ServiceError::BadConstraint(ConstraintFault::Parse(e)))?;
    cexpr::check_constraint(&expr)
        .map_err(|e| ServiceError::BadConstraint(ConstraintFault::Type(e)))?;
    Ok(expr)
}

/// Resolve the planner shard count at service construction: an
/// explicit [`ServiceConfig::planner_shards`] always wins; otherwise
/// the `NETEMBED_PLANNER_SHARDS` environment variable (how CI pins the
/// sharded stress matrix); otherwise the machine's available
/// parallelism, capped at 8 — more dispatch lanes than cores only adds
/// lock traffic.
fn resolve_planner_shards(config: &ServiceConfig) -> usize {
    if let Some(n) = config.planner_shards {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("NETEMBED_PLANNER_SHARDS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// The mapping service.
pub struct NetEmbedService {
    registry: ModelRegistry,
    cache: FilterCache,
    /// Coarsened-substrate memo, keyed `(host, epoch, spec)`: one
    /// hierarchy build serves every hierarchical query against that
    /// model snapshot, across the prepared, planner and direct submit
    /// paths alike.
    hierarchies: HierarchyCache,
    /// Leasable warm scratches; [`NetEmbedService::prepare`] checks one
    /// out, [`PreparedQuery`]'s drop checks it back in. Concurrent
    /// prepared queries each hold their own, so nothing serializes on a
    /// single pool.
    scratches: Mutex<Vec<EmbedScratch>>,
    config: ServiceConfig,
    /// Dispatch-shard count, resolved once at construction (see
    /// [`resolve_planner_shards`]); every planner of this service gets
    /// this many lanes, matching `overload.len()`.
    planner_shards: usize,
    /// One overload ledger per planner dispatch shard; the service-wide
    /// picture is the roll-up ([`NetEmbedService::telemetry`]).
    overload: Box<[admission::OverloadStats]>,
    /// Scratches currently leased out, and the lifetime peak — the
    /// observed-concurrency signal the adaptive parking caps are driven
    /// from (see [`NetEmbedService::effective_max_parked_scratches`]).
    leases_out: AtomicUsize,
    lease_peak: AtomicUsize,
    faults: admission::FaultInjector,
    /// Feed-health block, written by an attached
    /// [`RegistryFeed`](feed::RegistryFeed)'s pumps and read by the
    /// staleness gate on every submit path. A service with no feed
    /// reads as `Live`/zero-lag, which disables the gate.
    feed: feed::FeedStatus,
}

impl NetEmbedService {
    /// A service with an empty model registry and filter cache and the
    /// default (unbounded-admission) [`ServiceConfig`].
    pub fn new() -> Self {
        Self::with_config(ServiceConfig::default())
    }

    /// A service with explicit per-service knobs: admission bounds and
    /// shed mode, parked-scratch/pool caps, planner shard count, and
    /// (for chaos testing) a fault-injection plan.
    pub fn with_config(config: ServiceConfig) -> Self {
        let planner_shards = resolve_planner_shards(&config);
        NetEmbedService {
            registry: ModelRegistry::new(),
            cache: FilterCache::new().with_max_waiters(config.admission.max_dedup_waiters),
            hierarchies: HierarchyCache::new(),
            scratches: Mutex::new(Vec::new()),
            config,
            planner_shards,
            overload: (0..planner_shards)
                .map(|_| admission::OverloadStats::default())
                .collect(),
            leases_out: AtomicUsize::new(0),
            lease_peak: AtomicUsize::new(0),
            faults: admission::FaultInjector::new(config.faults),
            feed: feed::FeedStatus::default(),
        }
    }

    /// The model registry (register/update hosting networks here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The shared filter cache (hit/miss counters live here).
    pub fn cache(&self) -> &FilterCache {
        &self.cache
    }

    /// The shared coarsened-substrate cache (hit/miss counters live
    /// here). Populated lazily by hierarchical runs, or eagerly via
    /// [`NetEmbedService::warm_hierarchy`].
    pub fn hierarchy_cache(&self) -> &HierarchyCache {
        &self.hierarchies
    }

    /// Coarsen `host`'s current model snapshot under `spec` and memoize
    /// the result, so a later hierarchical submit pays refinement and
    /// the restricted filter build only — not construction. Returns the
    /// cached hierarchy when one already exists for the current epoch.
    /// This is the warm-up path for latency-sensitive callers on large
    /// substrates (construction at 10^5+ nodes is seconds of work that
    /// should not land on the first query's budget).
    pub fn warm_hierarchy(
        &self,
        host: &str,
        spec: netembed::HierarchySpec,
    ) -> Result<std::sync::Arc<netembed::SubstrateHierarchy>, ServiceError> {
        let (net, epoch) = self
            .registry
            .get(host)
            .ok_or_else(|| ServiceError::UnknownHost(host.to_string()))?;
        let key = HierarchyKey {
            host: host.to_string(),
            epoch,
            spec,
        };
        // Empty-window promotion: an epoch bump that provably changed
        // no node re-keys the superseded hierarchy instead of
        // re-coarsening the whole substrate.
        self.hierarchies.try_promote(&key, |old| {
            self.registry
                .dirty_between(host, old, epoch)
                .is_some_and(|dirty| dirty.is_empty())
        });
        let (hier, _hit) = self
            .hierarchies
            .fetch_or_build(&key, || netembed::SubstrateHierarchy::build(&net, &spec));
        Ok(hier)
    }

    /// The service's configuration (admission policy, parking caps).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of planner dispatch shards (resolved at construction:
    /// explicit config, else `NETEMBED_PLANNER_SHARDS`, else available
    /// parallelism capped at 8). Every [`Planner`] created from this
    /// service has exactly this many lanes.
    pub fn planner_shards(&self) -> usize {
        self.planner_shards
    }

    /// The overload ledger of one dispatch shard.
    pub(crate) fn overload_shard(&self, shard: usize) -> &admission::OverloadStats {
        &self.overload[shard]
    }

    /// Admitted-but-unresolved requests across all shards right now
    /// (the sum of the per-shard queue-depth gauges) — what the
    /// service-wide `max_total_queue_depth` cap is checked against.
    pub(crate) fn total_queue_depth(&self) -> usize {
        self.overload.iter().map(|o| o.queue_depth()).sum()
    }

    pub(crate) fn faults(&self) -> &admission::FaultInjector {
        &self.faults
    }

    /// The feed-health block a [`RegistryFeed`]
    /// publishes into (and the staleness gate reads). Always `Live`
    /// with zero lag when no feed is attached.
    pub fn feed_status(&self) -> &feed::FeedStatus {
        &self.feed
    }

    /// Remove a model *and* eagerly drop the host's cached filters.
    /// [`ModelRegistry::remove`] alone leaves the removed host's
    /// [`FilterCache`] entries resident until LRU pressure evicts them
    /// — epoch keying keeps them unservable, but a removed namespace
    /// should not pin cache slots (and a promotion must never consider
    /// a dead host's entries), so the service pairs the two.
    pub fn remove_model(&self, name: &str) -> Option<std::sync::Arc<Network>> {
        let model = self.registry.remove(name);
        if model.is_some() {
            self.cache.invalidate_host(name);
            self.hierarchies.invalidate_host(name);
        }
        model
    }

    /// Whether the [`StalenessPolicy`] says submits must shed right
    /// now: the feed is degraded and the policy is `Block`, or it is
    /// `ServeStale` and the lag exceeds `max_lag`.
    pub(crate) fn stale_shed(&self) -> bool {
        if self.feed.state() == feed::FeedState::Live {
            return false;
        }
        match self.config.staleness {
            StalenessPolicy::Block => true,
            StalenessPolicy::ServeStale { max_lag } => self.feed.lag() > max_lag,
        }
    }

    /// The [`Staleness`] marker to stamp on a response computed against
    /// `epoch` right now — `None` while the feed is live.
    pub(crate) fn current_staleness(&self, epoch: ModelEpoch) -> Option<Staleness> {
        if self.feed.state() == feed::FeedState::Live {
            return None;
        }
        Some(Staleness {
            lag: self.feed.lag(),
            epoch,
        })
    }

    /// Dirty-window cache repair (see [`FilterCache::try_patch`] and
    /// the cache module's "Epoch patching" docs): before resolving
    /// `key` through the cache, classify the accumulated dirty window
    /// against the newest superseded same-identity entry —
    ///
    /// * window unknowable (broken delta chain, plain `update`) →
    ///   skip, normal miss/build;
    /// * window provably empty → *promote* the entry in place;
    /// * otherwise → clone the superseded matrix and repair it with
    ///   [`FilterMatrix::patch`](netembed::FilterMatrix::patch) under
    ///   `problem` (compiled at `key.epoch`); a removal-only window
    ///   re-keys the repaired clone, while a window that *added* a
    ///   feasible candidate falls back to a full rebuild.
    ///
    /// Routing every non-empty window through the patch path is what
    /// makes epoch reuse sound for additive mutations: the old
    /// touched-host intersection could not see a dirty node becoming
    /// newly admissible outside the cached candidate set, and would
    /// promote a filter that silently misses solutions.
    pub(crate) fn repair_filter(&self, key: &FilterKey, problem: &Problem<'_>) -> FilterRepair {
        let mut repair = FilterRepair::default();
        let outcome = &mut repair;
        self.cache.try_patch(key, |old, filter| {
            match self.registry.dirty_between(&key.host, old, key.epoch) {
                None => PatchDecision::Skip,
                Some(dirty) if dirty.is_empty() => PatchDecision::Promote,
                Some(dirty) => {
                    let ids: Vec<netgraph::NodeId> = dirty.iter().map(netgraph::NodeId).collect();
                    let mut repaired = (*filter).clone();
                    let mut dl = Deadline::unlimited();
                    let mut stats = SearchStats::default();
                    match repaired.patch(problem, &ids, &mut dl, &mut stats) {
                        Ok(PatchOutcome::Patched) => {
                            outcome.patched = true;
                            PatchDecision::Replace(std::sync::Arc::new(repaired))
                        }
                        Ok(PatchOutcome::NeedsRebuild) | Err(_) => {
                            outcome.patch_rebuild = true;
                            PatchDecision::Rebuild
                        }
                    }
                }
            }
        });
        repair
    }

    /// The parked-scratch cap in force right now: an explicit
    /// [`ServiceConfig::max_parked_scratches`] verbatim, else adaptive —
    /// enough parked scratches to re-lease one to every dispatch shard
    /// *and* to the peak number of concurrent leases ever observed,
    /// never below the historical fixed cap of 8 (and capped at 64 so a
    /// one-off spike cannot pin unbounded memory).
    pub fn effective_max_parked_scratches(&self) -> usize {
        self.config.max_parked_scratches.unwrap_or_else(|| {
            let observed = self
                .planner_shards
                .max(self.lease_peak.load(Ordering::Relaxed));
            observed.clamp(8, 64)
        })
    }

    /// The parked-pool-thread cap in force right now: an explicit
    /// [`ServiceConfig::max_parked_pool_threads`] verbatim, else
    /// adaptive — scaled off the same observed-concurrency signal as
    /// [`NetEmbedService::effective_max_parked_scratches`] (8 threads
    /// per concurrent lease, the historical per-scratch budget), never
    /// below the historical fixed cap of 32 and capped at 256.
    pub fn effective_max_parked_pool_threads(&self) -> usize {
        self.config.max_parked_pool_threads.unwrap_or_else(|| {
            let observed = self
                .planner_shards
                .max(self.lease_peak.load(Ordering::Relaxed));
            (8 * observed).clamp(32, 256)
        })
    }

    pub(crate) fn checkout_scratch(&self) -> EmbedScratch {
        let now = self.leases_out.fetch_add(1, Ordering::Relaxed) + 1;
        self.lease_peak.fetch_max(now, Ordering::Relaxed);
        self.scratches.lock().pop().unwrap_or_default()
    }

    pub(crate) fn checkin_scratch(&self, scratch: EmbedScratch) {
        // Saturating decrement: tests (and future callers) may check in
        // a scratch they never checked out, and a wrapped gauge would
        // poison the adaptive caps.
        let _ = self
            .leases_out
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
        if scratch.parallel.pool().thread_count() > self.effective_max_parked_pool_threads() {
            // Dropping the scratch drops its pool, joining the threads:
            // outlier thread counts don't stay resident.
            return;
        }
        let mut parked = self.scratches.lock();
        if parked.len() < self.effective_max_parked_scratches() {
            parked.push(scratch);
        }
    }

    /// Register a hosting network from a GraphML document.
    pub fn register_graphml(&self, name: &str, doc: &str) -> Result<(), ServiceError> {
        let net = graphml::from_str(doc)?;
        self.registry.register(name, net);
        Ok(())
    }

    /// Compile a `(host, query, constraint)` request into a long-lived
    /// [`PreparedQuery`] handle (§III's repeatedly-querying
    /// application, made explicit). Fails fast on an unknown host and on
    /// any constraint problem — parse errors and definite type errors
    /// both surface here as [`ServiceError::BadConstraint`], never
    /// mid-search.
    pub fn prepare(
        &self,
        host: &str,
        query: Network,
        constraint: &str,
    ) -> Result<PreparedQuery<'_>, ServiceError> {
        if self.registry.epoch(host).is_none() {
            return Err(ServiceError::UnknownHost(host.to_string()));
        }
        let expr = parse_and_lint(constraint)?;
        Ok(PreparedQuery::new(
            self,
            host.to_string(),
            query,
            constraint.to_string(),
            expr,
        ))
    }

    /// Submit a query (§III component 2): a thin wrapper that prepares,
    /// runs once and drops the handle. Repeated identical submits still
    /// amortize — the filter cache and the scratch/pool lease are
    /// service-wide, so only the first submit (per model epoch) builds a
    /// filter and spawns worker threads.
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, ServiceError> {
        let mut prepared =
            self.prepare(&request.host, request.query.clone(), &request.constraint)?;
        prepared.run(&request.options)
    }

    /// Submit a batch of runs over one `(host, query, constraint)`
    /// triple (§III component 2, amortized): a thin wrapper over
    /// [`PreparedQuery::run_batch`]. One model snapshot, one compiled
    /// problem, and one filter build — or cache hit — serve every
    /// filter-based run; the build is charged to the run that triggered
    /// it (its timeout budget, its eval counters, its wall time),
    /// exactly as in [`NetEmbedService::submit`]. If a build is cut
    /// short by its run's deadline, that run reports `Inconclusive`,
    /// the truncated filter is discarded (never cached), and the next
    /// filter-needing run retries under its own budget. Every returned
    /// mapping is independently re-verified.
    pub fn submit_batch(
        &self,
        request: &BatchQueryRequest,
    ) -> Result<Vec<QueryResponse>, ServiceError> {
        let mut prepared =
            self.prepare(&request.host, request.query.clone(), &request.constraint)?;
        prepared.run_batch(&request.runs)
    }
}

impl Default for NetEmbedService {
    fn default() -> Self {
        Self::new()
    }
}

/// One dispatch shard's slice of the overload telemetry. The ledger
/// identity `accepted + shed.total() == submitted` holds per shard
/// (when the shard's queue is drained) because every request's counter
/// traffic stays in the shard its key hashed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Admitted-but-unresolved requests in this shard right now.
    pub queue_depth: usize,
    /// Requests ever routed to this shard (past host/constraint
    /// validation).
    pub submitted: u64,
    /// Requests admitted to this shard's queue and not later evicted.
    pub accepted: u64,
    /// Requests this shard shed, by reason.
    pub shed: ShedCounters,
    /// Enqueue→dispatch waits observed in this shard.
    pub queue_wait: HistogramSnapshot,
    /// Per-member dispatch (run) latencies observed in this shard.
    pub dispatch_latency: HistogramSnapshot,
}

/// Point-in-time telemetry of a service: the pool/scratch block (the
/// ROADMAP's "scratch-lease tuning" observability half — how much warm
/// capacity is parked, whether steady-state traffic is still spawning
/// threads, and the peak number of concurrently leased scratches that
/// drives the adaptive parking caps) plus the overload block
/// (queue-depth gauge, admission counters, shed counters by reason,
/// and queue-wait / dispatch-latency histograms). The overload fields
/// are **roll-ups** of the per-shard ledgers in
/// [`ServiceTelemetry::shards`]: counters sum, histograms merge
/// bucket-wise — so `accepted + shed.total() == submitted` holds
/// globally because it holds in every shard. One snapshot is not
/// atomic across shards: probe at quiescent points for exact
/// identities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTelemetry {
    /// Warm scratches currently parked (bounded by
    /// [`NetEmbedService::effective_max_parked_scratches`]; leased ones
    /// are not counted).
    pub parked_scratches: usize,
    /// Live worker threads across the parked scratches' pools.
    pub pool_threads: usize,
    /// Threads ever spawned by the parked scratches' pools. Frozen
    /// between two probes ⇒ the traffic in between ran entirely on
    /// warm threads.
    pub spawned_total: u64,
    /// Peak number of simultaneously leased-out scratches over the
    /// service's lifetime — the observed-concurrency signal the
    /// adaptive parking caps are derived from.
    pub scratch_lease_peak: usize,
    /// Number of planner dispatch shards (the length of `shards`).
    pub planner_shards: usize,
    /// Admitted-but-unresolved planner requests right now (gauge,
    /// summed across shards).
    pub queue_depth: usize,
    /// Planner requests ever submitted (past host/constraint
    /// validation), summed across shards.
    pub submitted: u64,
    /// Planner requests admitted to a queue and not later evicted,
    /// summed across shards.
    pub accepted: u64,
    /// Requests shed, by reason (admission refusals, evictions,
    /// deadline-hopeless sheds, dedup-waiter overflow), summed across
    /// shards.
    pub shed: ShedCounters,
    /// Fixed-bucket histogram of enqueue→dispatch waits (merged across
    /// shards).
    pub queue_wait: HistogramSnapshot,
    /// Fixed-bucket histogram of per-member dispatch (run) latencies
    /// (merged across shards).
    pub dispatch_latency: HistogramSnapshot,
    /// Coarsened substrates currently memoized in the
    /// [`HierarchyCache`].
    pub hierarchies_resident: usize,
    /// Lifetime [`HierarchyCache`] lookup hits — hierarchical runs
    /// that skipped substrate coarsening entirely.
    pub hierarchy_cache_hits: u64,
    /// Lifetime [`HierarchyCache`] lookup misses (each one coarsened
    /// the substrate once).
    pub hierarchy_cache_misses: u64,
    /// Lifetime superseded hierarchies re-keyed across an empty dirty
    /// window ([`HierarchyCache::try_promote`]) — re-coarsenings saved.
    pub hierarchy_promotions: u64,
    /// Lifetime [`FilterCache`] entries re-keyed across an empty dirty
    /// window ([`FilterCache::try_promote`]) — filter rebuilds saved
    /// without touching a single cell.
    pub filter_cache_promotions: u64,
    /// Lifetime [`FilterCache`] entries repaired in place across a
    /// removal-only dirty window ([`FilterCache::try_patch`]) — filter
    /// rebuilds turned into dirty-window re-scans.
    pub filter_cache_patches: u64,
    /// Lifetime patch attempts that fell back to a full rebuild
    /// because the window added a feasible candidate (the additive-
    /// mutation soundness valve).
    pub filter_cache_patch_rebuilds: u64,
    /// Feed health: state, delta counters (balanced per the
    /// [`feed`]-module ledger identity), resync counters, last applied
    /// sequence and the staleness-lag gauge. All zero /
    /// [`FeedState::Live`](feed::FeedState) when no feed is attached.
    pub feed: feed::FeedTelemetry,
    /// The per-shard ledgers the fields above roll up.
    pub shards: Vec<ShardTelemetry>,
}

impl NetEmbedService {
    /// Snapshot the service telemetry. See [`ServiceTelemetry`] for
    /// field semantics.
    pub fn telemetry(&self) -> ServiceTelemetry {
        let parked = self.scratches.lock();
        let shards: Vec<ShardTelemetry> = self
            .overload
            .iter()
            .map(|o| ShardTelemetry {
                queue_depth: o.queue_depth(),
                submitted: o.submitted(),
                accepted: o.accepted(),
                shed: o.shed_counters(),
                queue_wait: o.queue_wait_snapshot(),
                dispatch_latency: o.dispatch_snapshot(),
            })
            .collect();
        let mut shed = ShedCounters::default();
        let mut queue_wait = HistogramSnapshot::default();
        let mut dispatch_latency = HistogramSnapshot::default();
        for s in &shards {
            shed.merge(&s.shed);
            queue_wait.merge(&s.queue_wait);
            dispatch_latency.merge(&s.dispatch_latency);
        }
        ServiceTelemetry {
            parked_scratches: parked.len(),
            pool_threads: parked
                .iter()
                .map(|s| s.parallel.pool().thread_count())
                .sum(),
            spawned_total: parked
                .iter()
                .map(|s| s.parallel.pool().spawned_total())
                .sum(),
            scratch_lease_peak: self.lease_peak.load(Ordering::Relaxed),
            planner_shards: self.planner_shards,
            queue_depth: shards.iter().map(|s| s.queue_depth).sum(),
            submitted: shards.iter().map(|s| s.submitted).sum(),
            accepted: shards.iter().map(|s| s.accepted).sum(),
            shed,
            queue_wait,
            dispatch_latency,
            hierarchies_resident: self.hierarchies.len(),
            hierarchy_cache_hits: self.hierarchies.hits(),
            hierarchy_cache_misses: self.hierarchies.misses(),
            hierarchy_promotions: self.hierarchies.promotions(),
            filter_cache_promotions: self.cache.promotions(),
            filter_cache_patches: self.cache.patches(),
            filter_cache_patch_rebuilds: self.cache.patch_rebuilds(),
            feed: self.feed.snapshot(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netembed::{Algorithm, Outcome};
    use netgraph::Direction;

    fn triangle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let c = h.add_node("c");
        for (u, v, d) in [(a, b, 10.0), (b, c, 20.0), (a, c, 30.0)] {
            let e = h.add_edge(u, v);
            h.set_edge_attr(e, "avgDelay", d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        q
    }

    #[test]
    fn submit_round_trip() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let resp = svc
            .submit(&QueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                options: Options::default(),
            })
            .unwrap();
        assert_eq!(resp.mappings().len(), 2);
        assert!(matches!(resp.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn adaptive_scratch_caps_track_shards_and_lease_peak() {
        // Explicit config is authoritative — the adaptive signal never
        // overrides it.
        let svc = NetEmbedService::with_config(
            ServiceConfig::default()
                .max_parked_scratches(3)
                .max_parked_pool_threads(40)
                .planner_shards(6),
        );
        assert_eq!(svc.effective_max_parked_scratches(), 3);
        assert_eq!(svc.effective_max_parked_pool_threads(), 40);

        // Adaptive defaults hold the historical floors at low
        // concurrency…
        let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(2));
        assert_eq!(svc.effective_max_parked_scratches(), 8);
        assert_eq!(svc.effective_max_parked_pool_threads(), 32);

        // …scale with the shard count once it exceeds the floor…
        let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(12));
        assert_eq!(svc.effective_max_parked_scratches(), 12);
        assert_eq!(svc.effective_max_parked_pool_threads(), 96);

        // …and with the observed peak of concurrent scratch leases,
        // which persists after the leases return.
        let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(1));
        let held: Vec<_> = (0..20).map(|_| svc.checkout_scratch()).collect();
        for scratch in held {
            svc.checkin_scratch(scratch);
        }
        assert_eq!(svc.effective_max_parked_scratches(), 20);
        assert_eq!(svc.effective_max_parked_pool_threads(), 160);
        assert_eq!(svc.telemetry().scratch_lease_peak, 20);

        // Clamped: a one-off spike cannot pin unbounded memory.
        let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(1));
        let held: Vec<_> = (0..100).map(|_| svc.checkout_scratch()).collect();
        drop(held);
        assert_eq!(svc.effective_max_parked_scratches(), 64);
        assert_eq!(svc.effective_max_parked_pool_threads(), 256);
    }

    #[test]
    fn unknown_host_rejected() {
        let svc = NetEmbedService::new();
        let err = svc
            .submit(&QueryRequest {
                host: "nope".into(),
                query: edge_query(),
                constraint: "true".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownHost(_)));
    }

    #[test]
    fn register_from_graphml() {
        let svc = NetEmbedService::new();
        let doc = r#"<graphml>
          <key id="d" for="edge" attr.name="avgDelay" attr.type="double"/>
          <graph id="g" edgedefault="undirected">
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"><data key="d">5.0</data></edge>
          </graph></graphml>"#;
        svc.register_graphml("g", doc).unwrap();
        let resp = svc
            .submit(&QueryRequest {
                host: "g".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay < 10.0".into(),
                options: Options::default(),
            })
            .unwrap();
        assert_eq!(resp.mappings().len(), 2);
    }

    #[test]
    fn malformed_graphml_rejected() {
        let svc = NetEmbedService::new();
        assert!(matches!(
            svc.register_graphml("bad", "<graphml><nope/></graphml>"),
            Err(ServiceError::Graphml(_))
        ));
    }

    #[test]
    fn repeated_submit_builds_exactly_one_filter() {
        // The acceptance loop: same host/query/constraint, no model
        // update — the first submit builds, every later submit is a
        // cache hit (zero constraint evaluations, hit counter set).
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let req = QueryRequest {
            host: "plab".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 15.0".into(),
            options: Options::default(),
        };
        let first = svc.submit(&req).unwrap();
        assert_eq!(first.mappings().len(), 2);
        assert!(first.stats.constraint_evals > 0, "first submit builds");
        assert_eq!(first.stats.filter_cache_hits, 0);
        for i in 0..5 {
            let resp = svc.submit(&req).unwrap();
            assert_eq!(resp.mappings().len(), 2, "submit {i}");
            assert_eq!(
                resp.stats.constraint_evals, 0,
                "submit {i} rebuilt the filter"
            );
            assert_eq!(resp.stats.filter_cache_hits, 1, "submit {i} missed");
            assert_eq!(resp.stats.filter_cells, first.stats.filter_cells);
        }
        assert_eq!(svc.cache().len(), 1);
    }

    #[test]
    fn epoch_bump_forces_exactly_one_rebuild() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let req = QueryRequest {
            host: "plab".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 15.0".into(),
            options: Options::default(),
        };
        svc.submit(&req).unwrap();
        // Reservation-style in-place update: epoch bumps, model content
        // changes.
        svc.registry()
            .update("plab", |net| {
                for e in net.edge_refs().collect::<Vec<_>>() {
                    net.set_edge_attr(e.id, "avgDelay", 100.0);
                }
            })
            .unwrap();
        // Exactly one rebuild against the new model...
        let rebuilt = svc.submit(&req).unwrap();
        assert!(
            rebuilt.stats.constraint_evals > 0,
            "epoch bump must rebuild"
        );
        assert_eq!(rebuilt.stats.filter_cache_hits, 0);
        assert_eq!(rebuilt.mappings().len(), 0, "new model: nothing fits");
        // ...then hits again.
        let warm = svc.submit(&req).unwrap();
        assert_eq!(warm.stats.constraint_evals, 0);
        assert_eq!(warm.stats.filter_cache_hits, 1);
    }

    #[test]
    fn prepared_query_runs_share_scratch_and_cache() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let mut prepared = svc
            .prepare("plab", edge_query(), "rEdge.avgDelay <= 15.0")
            .unwrap();
        let first = prepared.run(&Options::default()).unwrap();
        assert_eq!(first.mappings().len(), 2);
        assert!(first.stats.constraint_evals > 0);
        for _ in 0..3 {
            let resp = prepared.run(&Options::default()).unwrap();
            assert_eq!(resp.mappings().len(), 2);
            assert_eq!(resp.stats.filter_cache_hits, 1);
        }
        // The handle returns its scratch to the service on drop; the
        // next prepare reuses it.
        drop(prepared);
        let mut again = svc
            .prepare("plab", edge_query(), "rEdge.avgDelay <= 15.0")
            .unwrap();
        let resp = again.run(&Options::default()).unwrap();
        assert_eq!(resp.stats.filter_cache_hits, 1);
    }

    #[test]
    fn oversized_pools_are_dropped_at_checkin_not_parked() {
        // Small caps via ServiceConfig (the knobs that used to be
        // hard-coded constants) so the test stays cheap.
        let svc = NetEmbedService::with_config(
            ServiceConfig::default()
                .max_parked_scratches(2)
                .max_parked_pool_threads(6),
        );
        let mut big = EmbedScratch::new();
        big.parallel.pool_mut().ensure_threads(7);
        svc.checkin_scratch(big);
        assert!(
            svc.scratches.lock().is_empty(),
            "an outlier pool must not stay resident"
        );
        let mut ok = EmbedScratch::new();
        ok.parallel.pool_mut().ensure_threads(4);
        svc.checkin_scratch(ok);
        assert_eq!(svc.scratches.lock().len(), 1);
        // The scratch-park cap is a knob too.
        svc.checkin_scratch(EmbedScratch::new());
        svc.checkin_scratch(EmbedScratch::new());
        assert_eq!(
            svc.scratches.lock().len(),
            2,
            "park cap of 2 must hold the third scratch out"
        );
    }

    #[test]
    fn reconstrain_swaps_constraint_without_repreparing() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let mut prepared = svc
            .prepare("plab", edge_query(), "rEdge.avgDelay <= 15.0")
            .unwrap();
        assert_eq!(
            prepared.run(&Options::default()).unwrap().mappings().len(),
            2
        );
        // Relax: every edge qualifies now.
        prepared.reconstrain("rEdge.avgDelay <= 50.0").unwrap();
        assert_eq!(prepared.constraint(), "rEdge.avgDelay <= 50.0");
        assert_eq!(
            prepared.run(&Options::default()).unwrap().mappings().len(),
            6
        );
        // Back to the first level: its filter is still cached.
        prepared.reconstrain("rEdge.avgDelay <= 15.0").unwrap();
        let back = prepared.run(&Options::default()).unwrap();
        assert_eq!(back.mappings().len(), 2);
        assert_eq!(back.stats.filter_cache_hits, 1);
        // Bad replacements are rejected and leave the handle usable.
        assert!(matches!(
            prepared.reconstrain("1 +"),
            Err(ServiceError::BadConstraint(ConstraintFault::Parse(_)))
        ));
        assert!(matches!(
            prepared.reconstrain("\"fast\" == 1"),
            Err(ServiceError::BadConstraint(ConstraintFault::Type(_)))
        ));
        assert_eq!(
            prepared.run(&Options::default()).unwrap().mappings().len(),
            2
        );
    }

    #[test]
    fn batch_pins_its_filter_and_touches_the_cache_once() {
        // Regression: a batch must hold the filter it obtained in a
        // batch-local pin — one shared-cache lookup for the whole
        // batch, so concurrent LRU eviction can never force a mid-batch
        // rebuild onto an innocent run's timeout budget.
        use netembed::SearchMode;
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let mut prepared = svc
            .prepare("plab", edge_query(), "rEdge.avgDelay <= 15.0")
            .unwrap();
        let runs: Vec<Options> = (0..5)
            .map(|seed| Options {
                algorithm: netembed::Algorithm::Rwb,
                mode: SearchMode::First,
                seed,
                ..Options::default()
            })
            .collect();
        let (hits0, misses0) = (svc.cache().hits(), svc.cache().misses());
        let responses = prepared.run_batch(&runs).unwrap();
        assert!(responses[0].stats.constraint_evals > 0, "first run builds");
        for resp in &responses[1..] {
            assert_eq!(resp.stats.constraint_evals, 0);
            assert_eq!(resp.stats.filter_cache_hits, 1);
        }
        // Exactly one miss to discover the key; the four reusing runs
        // never touched the shared cache — they used the pin.
        assert_eq!(svc.cache().misses() - misses0, 1);
        assert_eq!(svc.cache().hits() - hits0, 0);
    }

    #[test]
    fn prepare_rejects_unparsable_constraint_up_front() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let err = svc
            .submit(&QueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "1 +".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::BadConstraint(ConstraintFault::Parse(_))),
            "parse failure must surface as BadConstraint, got {err}"
        );
        // Batch path too.
        let err = svc
            .submit_batch(&BatchQueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <=".into(),
                runs: vec![Options::default()],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::BadConstraint(ConstraintFault::Parse(_))
        ));
    }

    #[test]
    fn batch_reuses_filter_across_runs() {
        use netembed::{Algorithm, SearchMode};
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        // Ten RWB samples with different seeds plus a parallel run and an
        // LNS run: one filter build serves every filter-based run.
        let mut runs: Vec<Options> = (0..10)
            .map(|seed| Options {
                algorithm: Algorithm::Rwb,
                mode: SearchMode::First,
                seed,
                ..Options::default()
            })
            .collect();
        runs.push(Options {
            algorithm: Algorithm::ParallelEcf { threads: 2 },
            ..Options::default()
        });
        runs.push(Options {
            algorithm: Algorithm::Lns,
            ..Options::default()
        });
        let responses = svc
            .submit_batch(&BatchQueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                runs,
            })
            .unwrap();
        assert_eq!(responses.len(), 12);
        let cells = responses[0].stats.filter_cells;
        assert!(cells > 0);
        // The first filter-needing run is charged for the build.
        assert!(responses[0].stats.constraint_evals > 0);
        for resp in &responses[..10] {
            assert_eq!(resp.mappings().len(), 1, "each RWB sample finds one");
            assert_eq!(resp.stats.filter_cells, cells);
        }
        for resp in &responses[1..10] {
            // Reusing runs evaluate no constraints — the batch amortized
            // the filter build away (via the epoch-keyed cache now).
            assert_eq!(resp.stats.constraint_evals, 0);
            assert_eq!(resp.stats.filter_cache_hits, 1);
        }
        // The parallel all-matches run agrees with a standalone submit.
        assert_eq!(responses[10].mappings().len(), 2);
        assert!(matches!(responses[10].outcome, Outcome::Complete(_)));
        // LNS ran filter-less but through the same scratch.
        assert_eq!(responses[11].mappings().len(), 2);
        assert_eq!(responses[11].stats.filter_cells, 0);
    }

    #[test]
    fn batch_parallel_runs_share_worker_pool_under_stealing() {
        use netembed::{Algorithm, StealPolicy};
        // A bigger host so the parallel runs actually have a tree to
        // split: hub-heavy, like the skew the scheduler exists for.
        let mut h = Network::new(netgraph::Direction::Undirected);
        let hub = h.add_node("hub");
        let spokes: Vec<_> = (0..8).map(|i| h.add_node(format!("s{i}"))).collect();
        for (i, &s) in spokes.iter().enumerate() {
            let e = h.add_edge(hub, s);
            h.set_edge_attr(e, "avgDelay", 5.0 + i as f64);
            let e2 = h.add_edge(s, spokes[(i + 1) % spokes.len()]);
            h.set_edge_attr(e2, "avgDelay", 50.0);
        }
        let mut q = Network::new(netgraph::Direction::Undirected);
        let qh = q.add_node("qh");
        for i in 0..3 {
            let l = q.add_node(format!("ql{i}"));
            q.add_edge(qh, l);
        }
        let svc = NetEmbedService::new();
        svc.registry().register("skew", h);

        // Several parallel all-matches runs with different policies: the
        // batch reuses one filter and one persistent worker pool across
        // them, and stealing must not change the answer.
        let runs: Vec<Options> = vec![
            Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                steal: StealPolicy::disabled(),
                ..Options::default()
            },
            Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                ..Options::default()
            },
            Options {
                // More workers than root candidates (the host has 9
                // nodes): the surplus is hungry from the start, so the
                // deep worker is guaranteed to re-split.
                algorithm: Algorithm::ParallelEcf { threads: 16 },
                steal: StealPolicy::aggressive(),
                ..Options::default()
            },
        ];
        let responses = svc
            .submit_batch(&BatchQueryRequest {
                host: "skew".into(),
                query: q,
                constraint: "rEdge.avgDelay <= 20.0".into(),
                runs,
            })
            .unwrap();
        assert_eq!(responses.len(), 3);
        let n = responses[0].mappings().len();
        assert!(n > 0, "hub star must embed");
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.mappings().len(), n, "run {i} diverged");
            assert!(matches!(resp.outcome, Outcome::Complete(_)));
        }
        // Later runs reused the batch filter (no rebuild evals).
        assert_eq!(responses[1].stats.constraint_evals, 0);
        assert_eq!(responses[2].stats.constraint_evals, 0);
        // The second 4-thread run found all four pool threads parked
        // and warm from the first — spawn-free parallel search.
        assert_eq!(responses[1].stats.pool_reuse, 4);
        // The aggressive run on a hub host with idle workers re-split.
        assert!(
            responses[2].stats.tasks_spawned > 0,
            "aggressive stealing batch run never split"
        );
    }

    #[test]
    fn warm_service_parallel_submits_spawn_no_new_threads() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let req = QueryRequest {
            host: "plab".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 15.0".into(),
            options: Options {
                algorithm: Algorithm::ParallelEcf { threads: 2 },
                ..Options::default()
            },
        };
        let cold = svc.submit(&req).unwrap();
        assert_eq!(cold.stats.pool_reuse, 0, "first submit has no warm pool");
        for i in 0..3 {
            let warm = svc.submit(&req).unwrap();
            assert_eq!(warm.mappings().len(), 2);
            assert!(
                warm.stats.pool_reuse > 0,
                "warm submit {i} reused no pool threads"
            );
            assert_eq!(warm.stats.filter_cache_hits, 1);
        }
    }

    #[test]
    fn batch_unknown_host_rejected() {
        let svc = NetEmbedService::new();
        let err = svc
            .submit_batch(&BatchQueryRequest {
                host: "nope".into(),
                query: edge_query(),
                constraint: "true".into(),
                runs: vec![Options::default()],
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownHost(_)));
    }

    #[test]
    fn batch_zero_budget_run_does_not_poison_later_runs() {
        use std::time::Duration;
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let responses = svc
            .submit_batch(&BatchQueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                runs: vec![
                    Options {
                        timeout: Some(Duration::ZERO),
                        ..Options::default()
                    },
                    Options::default(),
                ],
            })
            .unwrap();
        assert!(matches!(responses[0].outcome, Outcome::Inconclusive));
        assert!(responses[0].stats.timed_out);
        // The truncated filter was never cached: the unlimited run
        // rebuilt it and completed.
        assert_eq!(responses[1].mappings().len(), 2);
        assert!(matches!(responses[1].outcome, Outcome::Complete(_)));
        assert_eq!(responses[1].stats.filter_cache_hits, 0);
    }

    #[test]
    fn model_update_changes_answers() {
        let svc = NetEmbedService::new();
        svc.registry().register("h", triangle_host());
        let req = QueryRequest {
            host: "h".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 15.0".into(),
            options: Options::default(),
        };
        assert_eq!(svc.submit(&req).unwrap().mappings().len(), 2);
        // Monitoring update: all delays jump.
        let mut updated = triangle_host();
        for e in updated.edge_refs().collect::<Vec<_>>() {
            updated.set_edge_attr(e.id, "avgDelay", 100.0);
        }
        svc.registry().register("h", updated);
        assert_eq!(svc.submit(&req).unwrap().mappings().len(), 0);
    }
}

#[cfg(test)]
mod lint_tests {
    use super::*;
    use netgraph::{Direction, Network};

    #[test]
    fn statically_ill_typed_constraint_rejected_at_submit() {
        let svc = NetEmbedService::new();
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        h.add_edge(a, b);
        svc.registry().register("h", h);
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        let err = svc
            .submit(&QueryRequest {
                host: "h".into(),
                query: q,
                constraint: "\"fast\" == 1".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::BadConstraint(ConstraintFault::Type(_))),
            "{err}"
        );
    }
}

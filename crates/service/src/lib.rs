//! # service — the NETEMBED mapping service
//!
//! §III of the paper describes NETEMBED as a long-running service
//! (Figure 1) with three components:
//!
//! 1. a **model of the real network**, maintained by a monitoring service
//!    or resource manager → [`registry::ModelRegistry`] plus the
//!    [`monitor::MonitorSim`] churn simulator;
//! 2. the **mapping service** where applications submit queries and get
//!    back lists of possible mappings → [`NetEmbedService`], with the
//!    interactive requirement-adjustment loop in [`negotiate()`];
//! 3. an optional **resource reservation system** that adjusts the model
//!    when mappings are allocated → [`reservation::ReservationManager`].
//!
//! Every mapping handed to a client is re-validated with
//! [`netembed::check_mapping`] — the service never returns an embedding it
//! cannot prove feasible against the current model.

pub mod monitor;
pub mod negotiate;
pub mod partition;
pub mod registry;
pub mod reservation;
pub mod schedule;

pub use monitor::{MonitorParams, MonitorSim};
pub use negotiate::{negotiate, NegotiationOutcome};
pub use partition::{Locality, PartitionedHost, PartitionedResponse};
pub use registry::ModelRegistry;
pub use reservation::{Reservation, ReservationError, ReservationManager};
pub use schedule::{Allocation, ScheduleError, ScheduledEmbedding, Scheduler, Tick};

use netembed::{
    Algorithm, Deadline, EmbedScratch, Engine, FilterMatrix, Mapping, Options, Outcome,
    ProblemError, SearchStats,
};
use netgraph::Network;
use std::fmt;
use std::sync::Arc;

/// A query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Name of the hosting-network model to embed into.
    pub host: String,
    /// The query (virtual) network.
    pub query: Network,
    /// Constraint expression source (§VI-B).
    pub constraint: String,
    /// Engine options (algorithm, mode, timeout, …).
    pub options: Options,
}

/// A batch of embedding runs over one `(host, query, constraint)` triple
/// — e.g. thousands of RWB samples with different seeds, or one query
/// swept across modes/orders/thread counts. The service builds the
/// problem and the constraint filter **once** and reuses one
/// [`EmbedScratch`] across every run, so per-run overhead collapses to
/// the search itself (see [`NetEmbedService::submit_batch`]).
#[derive(Debug, Clone)]
pub struct BatchQueryRequest {
    /// Name of the hosting-network model to embed into.
    pub host: String,
    /// The query (virtual) network, shared by every run.
    pub query: Network,
    /// Constraint expression source, shared by every run.
    pub constraint: String,
    /// One engine-options set per run.
    pub runs: Vec<Options>,
}

/// A service response: the §VII-E-classified outcome plus statistics.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Classified result.
    pub outcome: Outcome,
    /// Search statistics.
    pub stats: SearchStats,
}

impl QueryResponse {
    /// The mappings found (empty for inconclusive results).
    pub fn mappings(&self) -> &[Mapping] {
        self.outcome.mappings()
    }
}

/// Service-level errors.
#[derive(Debug)]
pub enum ServiceError {
    /// No model registered under the requested name.
    UnknownHost(String),
    /// The embedding engine rejected the problem.
    Problem(ProblemError),
    /// A produced mapping failed independent verification — an engine bug
    /// surfaced; the response is withheld.
    VerificationFailed(netembed::VerifyError),
    /// GraphML parse failure (when loading models from documents).
    Graphml(graphml::GraphmlError),
    /// The constraint failed the static type lint (§VI-B language).
    BadConstraint(cexpr::TypeError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownHost(h) => write!(f, "unknown hosting network `{h}`"),
            ServiceError::Problem(e) => write!(f, "{e}"),
            ServiceError::VerificationFailed(e) => {
                write!(
                    f,
                    "internal error: produced mapping failed verification: {e}"
                )
            }
            ServiceError::Graphml(e) => write!(f, "{e}"),
            ServiceError::BadConstraint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ProblemError> for ServiceError {
    fn from(e: ProblemError) -> Self {
        ServiceError::Problem(e)
    }
}

impl From<graphml::GraphmlError> for ServiceError {
    fn from(e: graphml::GraphmlError) -> Self {
        ServiceError::Graphml(e)
    }
}

/// The mapping service.
pub struct NetEmbedService {
    registry: ModelRegistry,
}

impl NetEmbedService {
    /// A service with an empty model registry.
    pub fn new() -> Self {
        NetEmbedService {
            registry: ModelRegistry::new(),
        }
    }

    /// The model registry (register/update hosting networks here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Register a hosting network from a GraphML document.
    pub fn register_graphml(&self, name: &str, doc: &str) -> Result<(), ServiceError> {
        let net = graphml::from_str(doc)?;
        self.registry.register(name, net);
        Ok(())
    }

    /// Submit a query (§III component 2).
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, ServiceError> {
        let host: Arc<Network> = self
            .registry
            .get(&request.host)
            .ok_or_else(|| ServiceError::UnknownHost(request.host.clone()))?;
        // Pre-flight lint: definite type errors fail fast with a precise
        // message instead of surfacing mid-search.
        if let Ok(expr) = cexpr::parse(&request.constraint) {
            cexpr::check_constraint(&expr).map_err(ServiceError::BadConstraint)?;
        }
        let engine = Engine::new(&host);
        let result = engine.embed(&request.query, &request.constraint, &request.options)?;

        // Safety net: independently verify every mapping before returning.
        let problem = netembed::Problem::new(&request.query, &host, &request.constraint)?;
        for m in &result.mappings {
            netembed::check_mapping(&problem, m).map_err(ServiceError::VerificationFailed)?;
        }
        Ok(QueryResponse {
            outcome: result.outcome,
            stats: result.stats,
        })
    }

    /// Submit a batch of runs over one `(host, query, constraint)` triple
    /// (§III component 2, amortized).
    ///
    /// The problem is compiled once. The first run that needs a filter
    /// (any algorithm but LNS) builds it — parallelized when that run is
    /// `ParallelEcf` — and every later run reuses it, along with one
    /// [`EmbedScratch`], so a batch of thousands of embeds pays the
    /// first-stage construction and the DFS arena setup once. The
    /// scratch's per-worker pool is shared too: every `ParallelEcf` run
    /// in the batch hands the same worker scratches to the work-stealing
    /// scheduler (split policy selected per run via
    /// [`Options::steal`](netembed::Options)), so stolen subtree tasks
    /// land on already-warm arenas across the whole batch. The build
    /// is charged to the run that triggered it, exactly as in
    /// [`NetEmbedService::submit`]: it spends that run's timeout budget
    /// (the search gets only the remainder) and its eval counters and
    /// wall time land in that run's stats. If the build is cut short by
    /// the deadline, the run reports `Inconclusive` and the truncated
    /// filter is discarded; the next filter-needing run retries under
    /// its own budget. Every returned mapping is independently
    /// re-verified.
    pub fn submit_batch(
        &self,
        request: &BatchQueryRequest,
    ) -> Result<Vec<QueryResponse>, ServiceError> {
        let host: Arc<Network> = self
            .registry
            .get(&request.host)
            .ok_or_else(|| ServiceError::UnknownHost(request.host.clone()))?;
        if let Ok(expr) = cexpr::parse(&request.constraint) {
            cexpr::check_constraint(&expr).map_err(ServiceError::BadConstraint)?;
        }
        let problem = netembed::Problem::new(&request.query, &host, &request.constraint)?;

        let mut scratch = EmbedScratch::new();
        let mut filter: Option<FilterMatrix> = None;
        let mut responses = Vec::with_capacity(request.runs.len());
        for options in &request.runs {
            let result = if matches!(options.algorithm, Algorithm::Lns) {
                // LNS keeps no filter state; it only shares the scratch.
                Engine::run_with_scratch(&problem, options, &mut scratch)?
            } else {
                // Build on demand, charging the triggering run.
                let mut build_charge: Option<(SearchStats, std::time::Duration)> = None;
                if filter.is_none() {
                    let build_start = std::time::Instant::now();
                    let mut deadline = Deadline::new(options.timeout);
                    let mut build_stats = SearchStats::default();
                    let threads = match options.algorithm {
                        Algorithm::ParallelEcf { threads } => threads,
                        _ => 1,
                    };
                    let built = FilterMatrix::build_par(
                        &problem,
                        threads,
                        &mut deadline,
                        &mut build_stats,
                    )?;
                    filter = Some(built);
                    build_charge = Some((build_stats, build_start.elapsed()));
                }
                let built = filter.as_ref().expect("filter built above");
                // The builder's search runs on whatever budget the build
                // left over; reusers get their full timeout (they paid
                // nothing).
                let run_options = match &build_charge {
                    Some((_, spent)) => Options {
                        timeout: options.timeout.map(|t| t.saturating_sub(*spent)),
                        ..options.clone()
                    },
                    None => options.clone(),
                };
                let mut result = Engine::run_prebuilt(&problem, built, &run_options, &mut scratch)?;
                if let Some((build_stats, spent)) = build_charge {
                    result.stats.constraint_evals += build_stats.constraint_evals;
                    result.stats.elapsed += spent;
                    result.stats.cpu_time += spent;
                }
                if built.truncated() {
                    // Don't poison later runs (which may have a larger
                    // budget) with a partial filter.
                    filter = None;
                }
                result
            };
            for m in &result.mappings {
                netembed::check_mapping(&problem, m).map_err(ServiceError::VerificationFailed)?;
            }
            responses.push(QueryResponse {
                outcome: result.outcome,
                stats: result.stats,
            });
        }
        Ok(responses)
    }
}

impl Default for NetEmbedService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn triangle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let c = h.add_node("c");
        for (u, v, d) in [(a, b, 10.0), (b, c, 20.0), (a, c, 30.0)] {
            let e = h.add_edge(u, v);
            h.set_edge_attr(e, "avgDelay", d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        q
    }

    #[test]
    fn submit_round_trip() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let resp = svc
            .submit(&QueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                options: Options::default(),
            })
            .unwrap();
        assert_eq!(resp.mappings().len(), 2);
        assert!(matches!(resp.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn unknown_host_rejected() {
        let svc = NetEmbedService::new();
        let err = svc
            .submit(&QueryRequest {
                host: "nope".into(),
                query: edge_query(),
                constraint: "true".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownHost(_)));
    }

    #[test]
    fn register_from_graphml() {
        let svc = NetEmbedService::new();
        let doc = r#"<graphml>
          <key id="d" for="edge" attr.name="avgDelay" attr.type="double"/>
          <graph id="g" edgedefault="undirected">
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"><data key="d">5.0</data></edge>
          </graph></graphml>"#;
        svc.register_graphml("g", doc).unwrap();
        let resp = svc
            .submit(&QueryRequest {
                host: "g".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay < 10.0".into(),
                options: Options::default(),
            })
            .unwrap();
        assert_eq!(resp.mappings().len(), 2);
    }

    #[test]
    fn malformed_graphml_rejected() {
        let svc = NetEmbedService::new();
        assert!(matches!(
            svc.register_graphml("bad", "<graphml><nope/></graphml>"),
            Err(ServiceError::Graphml(_))
        ));
    }

    #[test]
    fn batch_reuses_filter_across_runs() {
        use netembed::{Algorithm, SearchMode};
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        // Ten RWB samples with different seeds plus a parallel run and an
        // LNS run: one filter build serves every filter-based run.
        let mut runs: Vec<Options> = (0..10)
            .map(|seed| Options {
                algorithm: Algorithm::Rwb,
                mode: SearchMode::First,
                seed,
                ..Options::default()
            })
            .collect();
        runs.push(Options {
            algorithm: Algorithm::ParallelEcf { threads: 2 },
            ..Options::default()
        });
        runs.push(Options {
            algorithm: Algorithm::Lns,
            ..Options::default()
        });
        let responses = svc
            .submit_batch(&BatchQueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                runs,
            })
            .unwrap();
        assert_eq!(responses.len(), 12);
        let cells = responses[0].stats.filter_cells;
        assert!(cells > 0);
        // The first filter-needing run is charged for the build.
        assert!(responses[0].stats.constraint_evals > 0);
        for resp in &responses[..10] {
            assert_eq!(resp.mappings().len(), 1, "each RWB sample finds one");
            assert_eq!(resp.stats.filter_cells, cells);
        }
        for resp in &responses[1..10] {
            // Reusing runs evaluate no constraints — the batch amortized
            // the filter build away.
            assert_eq!(resp.stats.constraint_evals, 0);
        }
        // The parallel all-matches run agrees with a standalone submit.
        assert_eq!(responses[10].mappings().len(), 2);
        assert!(matches!(responses[10].outcome, Outcome::Complete(_)));
        // LNS ran filter-less but through the same scratch.
        assert_eq!(responses[11].mappings().len(), 2);
        assert_eq!(responses[11].stats.filter_cells, 0);
    }

    #[test]
    fn batch_parallel_runs_share_worker_pool_under_stealing() {
        use netembed::{Algorithm, StealPolicy};
        // A bigger host so the parallel runs actually have a tree to
        // split: hub-heavy, like the skew the scheduler exists for.
        let mut h = Network::new(netgraph::Direction::Undirected);
        let hub = h.add_node("hub");
        let spokes: Vec<_> = (0..8).map(|i| h.add_node(format!("s{i}"))).collect();
        for (i, &s) in spokes.iter().enumerate() {
            let e = h.add_edge(hub, s);
            h.set_edge_attr(e, "avgDelay", 5.0 + i as f64);
            let e2 = h.add_edge(s, spokes[(i + 1) % spokes.len()]);
            h.set_edge_attr(e2, "avgDelay", 50.0);
        }
        let mut q = Network::new(netgraph::Direction::Undirected);
        let qh = q.add_node("qh");
        for i in 0..3 {
            let l = q.add_node(format!("ql{i}"));
            q.add_edge(qh, l);
        }
        let svc = NetEmbedService::new();
        svc.registry().register("skew", h);

        // Several parallel all-matches runs with different policies: the
        // batch reuses one filter and one ParallelScratch pool across
        // them, and stealing must not change the answer.
        let runs: Vec<Options> = vec![
            Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                steal: StealPolicy::disabled(),
                ..Options::default()
            },
            Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                ..Options::default()
            },
            Options {
                // More workers than root candidates (the host has 9
                // nodes): the surplus is hungry from the start, so the
                // deep worker is guaranteed to re-split.
                algorithm: Algorithm::ParallelEcf { threads: 16 },
                steal: StealPolicy::aggressive(),
                ..Options::default()
            },
        ];
        let responses = svc
            .submit_batch(&BatchQueryRequest {
                host: "skew".into(),
                query: q,
                constraint: "rEdge.avgDelay <= 20.0".into(),
                runs,
            })
            .unwrap();
        assert_eq!(responses.len(), 3);
        let n = responses[0].mappings().len();
        assert!(n > 0, "hub star must embed");
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.mappings().len(), n, "run {i} diverged");
            assert!(matches!(resp.outcome, Outcome::Complete(_)));
        }
        // Later runs reused the batch filter (no rebuild evals).
        assert_eq!(responses[1].stats.constraint_evals, 0);
        assert_eq!(responses[2].stats.constraint_evals, 0);
        // The aggressive run on a hub host with idle workers re-split.
        assert!(
            responses[2].stats.tasks_spawned > 0,
            "aggressive stealing batch run never split"
        );
    }

    #[test]
    fn batch_unknown_host_rejected() {
        let svc = NetEmbedService::new();
        let err = svc
            .submit_batch(&BatchQueryRequest {
                host: "nope".into(),
                query: edge_query(),
                constraint: "true".into(),
                runs: vec![Options::default()],
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownHost(_)));
    }

    #[test]
    fn batch_zero_budget_run_does_not_poison_later_runs() {
        use std::time::Duration;
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let responses = svc
            .submit_batch(&BatchQueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                runs: vec![
                    Options {
                        timeout: Some(Duration::ZERO),
                        ..Options::default()
                    },
                    Options::default(),
                ],
            })
            .unwrap();
        assert!(matches!(responses[0].outcome, Outcome::Inconclusive));
        assert!(responses[0].stats.timed_out);
        // The truncated filter was discarded: the unlimited run rebuilt
        // it and completed.
        assert_eq!(responses[1].mappings().len(), 2);
        assert!(matches!(responses[1].outcome, Outcome::Complete(_)));
    }

    #[test]
    fn model_update_changes_answers() {
        let svc = NetEmbedService::new();
        svc.registry().register("h", triangle_host());
        let req = QueryRequest {
            host: "h".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 15.0".into(),
            options: Options::default(),
        };
        assert_eq!(svc.submit(&req).unwrap().mappings().len(), 2);
        // Monitoring update: all delays jump.
        let mut updated = triangle_host();
        for e in updated.edge_refs().collect::<Vec<_>>() {
            updated.set_edge_attr(e.id, "avgDelay", 100.0);
        }
        svc.registry().register("h", updated);
        assert_eq!(svc.submit(&req).unwrap().mappings().len(), 0);
    }
}

#[cfg(test)]
mod lint_tests {
    use super::*;
    use netgraph::{Direction, Network};

    #[test]
    fn statically_ill_typed_constraint_rejected_at_submit() {
        let svc = NetEmbedService::new();
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        h.add_edge(a, b);
        svc.registry().register("h", h);
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        let err = svc
            .submit(&QueryRequest {
                host: "h".into(),
                query: q,
                constraint: "\"fast\" == 1".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::BadConstraint(_)), "{err}");
    }
}

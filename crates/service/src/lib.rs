//! # service — the NETEMBED mapping service
//!
//! §III of the paper describes NETEMBED as a long-running service
//! (Figure 1) with three components:
//!
//! 1. a **model of the real network**, maintained by a monitoring service
//!    or resource manager → [`registry::ModelRegistry`] plus the
//!    [`monitor::MonitorSim`] churn simulator;
//! 2. the **mapping service** where applications submit queries and get
//!    back lists of possible mappings → [`NetEmbedService`], with the
//!    interactive requirement-adjustment loop in [`negotiate()`];
//! 3. an optional **resource reservation system** that adjusts the model
//!    when mappings are allocated → [`reservation::ReservationManager`].
//!
//! Every mapping handed to a client is re-validated with
//! [`netembed::check_mapping`] — the service never returns an embedding it
//! cannot prove feasible against the current model.

pub mod monitor;
pub mod negotiate;
pub mod partition;
pub mod registry;
pub mod reservation;
pub mod schedule;

pub use monitor::{MonitorParams, MonitorSim};
pub use negotiate::{negotiate, NegotiationOutcome};
pub use partition::{Locality, PartitionedHost, PartitionedResponse};
pub use registry::ModelRegistry;
pub use reservation::{Reservation, ReservationError, ReservationManager};
pub use schedule::{Allocation, ScheduleError, ScheduledEmbedding, Scheduler, Tick};

use netembed::{Engine, Mapping, Options, Outcome, ProblemError, SearchStats};
use netgraph::Network;
use std::fmt;
use std::sync::Arc;

/// A query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Name of the hosting-network model to embed into.
    pub host: String,
    /// The query (virtual) network.
    pub query: Network,
    /// Constraint expression source (§VI-B).
    pub constraint: String,
    /// Engine options (algorithm, mode, timeout, …).
    pub options: Options,
}

/// A service response: the §VII-E-classified outcome plus statistics.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Classified result.
    pub outcome: Outcome,
    /// Search statistics.
    pub stats: SearchStats,
}

impl QueryResponse {
    /// The mappings found (empty for inconclusive results).
    pub fn mappings(&self) -> &[Mapping] {
        self.outcome.mappings()
    }
}

/// Service-level errors.
#[derive(Debug)]
pub enum ServiceError {
    /// No model registered under the requested name.
    UnknownHost(String),
    /// The embedding engine rejected the problem.
    Problem(ProblemError),
    /// A produced mapping failed independent verification — an engine bug
    /// surfaced; the response is withheld.
    VerificationFailed(netembed::VerifyError),
    /// GraphML parse failure (when loading models from documents).
    Graphml(graphml::GraphmlError),
    /// The constraint failed the static type lint (§VI-B language).
    BadConstraint(cexpr::TypeError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownHost(h) => write!(f, "unknown hosting network `{h}`"),
            ServiceError::Problem(e) => write!(f, "{e}"),
            ServiceError::VerificationFailed(e) => {
                write!(
                    f,
                    "internal error: produced mapping failed verification: {e}"
                )
            }
            ServiceError::Graphml(e) => write!(f, "{e}"),
            ServiceError::BadConstraint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ProblemError> for ServiceError {
    fn from(e: ProblemError) -> Self {
        ServiceError::Problem(e)
    }
}

impl From<graphml::GraphmlError> for ServiceError {
    fn from(e: graphml::GraphmlError) -> Self {
        ServiceError::Graphml(e)
    }
}

/// The mapping service.
pub struct NetEmbedService {
    registry: ModelRegistry,
}

impl NetEmbedService {
    /// A service with an empty model registry.
    pub fn new() -> Self {
        NetEmbedService {
            registry: ModelRegistry::new(),
        }
    }

    /// The model registry (register/update hosting networks here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Register a hosting network from a GraphML document.
    pub fn register_graphml(&self, name: &str, doc: &str) -> Result<(), ServiceError> {
        let net = graphml::from_str(doc)?;
        self.registry.register(name, net);
        Ok(())
    }

    /// Submit a query (§III component 2).
    pub fn submit(&self, request: &QueryRequest) -> Result<QueryResponse, ServiceError> {
        let host: Arc<Network> = self
            .registry
            .get(&request.host)
            .ok_or_else(|| ServiceError::UnknownHost(request.host.clone()))?;
        // Pre-flight lint: definite type errors fail fast with a precise
        // message instead of surfacing mid-search.
        if let Ok(expr) = cexpr::parse(&request.constraint) {
            cexpr::check_constraint(&expr).map_err(ServiceError::BadConstraint)?;
        }
        let engine = Engine::new(&host);
        let result = engine.embed(&request.query, &request.constraint, &request.options)?;

        // Safety net: independently verify every mapping before returning.
        let problem = netembed::Problem::new(&request.query, &host, &request.constraint)?;
        for m in &result.mappings {
            netembed::check_mapping(&problem, m).map_err(ServiceError::VerificationFailed)?;
        }
        Ok(QueryResponse {
            outcome: result.outcome,
            stats: result.stats,
        })
    }
}

impl Default for NetEmbedService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn triangle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let c = h.add_node("c");
        for (u, v, d) in [(a, b, 10.0), (b, c, 20.0), (a, c, 30.0)] {
            let e = h.add_edge(u, v);
            h.set_edge_attr(e, "avgDelay", d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        q
    }

    #[test]
    fn submit_round_trip() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let resp = svc
            .submit(&QueryRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 15.0".into(),
                options: Options::default(),
            })
            .unwrap();
        assert_eq!(resp.mappings().len(), 2);
        assert!(matches!(resp.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn unknown_host_rejected() {
        let svc = NetEmbedService::new();
        let err = svc
            .submit(&QueryRequest {
                host: "nope".into(),
                query: edge_query(),
                constraint: "true".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownHost(_)));
    }

    #[test]
    fn register_from_graphml() {
        let svc = NetEmbedService::new();
        let doc = r#"<graphml>
          <key id="d" for="edge" attr.name="avgDelay" attr.type="double"/>
          <graph id="g" edgedefault="undirected">
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"><data key="d">5.0</data></edge>
          </graph></graphml>"#;
        svc.register_graphml("g", doc).unwrap();
        let resp = svc
            .submit(&QueryRequest {
                host: "g".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay < 10.0".into(),
                options: Options::default(),
            })
            .unwrap();
        assert_eq!(resp.mappings().len(), 2);
    }

    #[test]
    fn malformed_graphml_rejected() {
        let svc = NetEmbedService::new();
        assert!(matches!(
            svc.register_graphml("bad", "<graphml><nope/></graphml>"),
            Err(ServiceError::Graphml(_))
        ));
    }

    #[test]
    fn model_update_changes_answers() {
        let svc = NetEmbedService::new();
        svc.registry().register("h", triangle_host());
        let req = QueryRequest {
            host: "h".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 15.0".into(),
            options: Options::default(),
        };
        assert_eq!(svc.submit(&req).unwrap().mappings().len(), 2);
        // Monitoring update: all delays jump.
        let mut updated = triangle_host();
        for e in updated.edge_refs().collect::<Vec<_>>() {
            updated.set_edge_attr(e.id, "avgDelay", 100.0);
        }
        svc.registry().register("h", updated);
        assert_eq!(svc.submit(&req).unwrap().mappings().len(), 0);
    }
}

#[cfg(test)]
mod lint_tests {
    use super::*;
    use netgraph::{Direction, Network};

    #[test]
    fn statically_ill_typed_constraint_rejected_at_submit() {
        let svc = NetEmbedService::new();
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        h.add_edge(a, b);
        svc.registry().register("h", h);
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        let err = svc
            .submit(&QueryRequest {
                host: "h".into(),
                query: q,
                constraint: "\"fast\" == 1".into(),
                options: Options::default(),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::BadConstraint(_)), "{err}");
    }
}

//! Monitoring simulator: the churn source behind the network model.
//!
//! In a deployment, the model of the real network is "maintained either by
//! a monitoring service, a resource manager, or a combination of both"
//! (§III). This simulator stands in for the all-pairs ping daemon of the
//! PlanetLab trace: each tick multiplies every delay attribute by a random
//! factor around 1 and occasionally marks nodes down/up, pushing the
//! updated model into the registry. Tests and examples use it to exercise
//! re-query behaviour under drift.

use crate::registry::ModelRegistry;
use netgraph::{AttrValue, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct MonitorParams {
    /// Maximum relative delay drift per tick (e.g. 0.1 = ±10%).
    pub delay_jitter: f64,
    /// Probability that a node flips availability per tick.
    pub flap_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonitorParams {
    fn default() -> Self {
        MonitorParams {
            delay_jitter: 0.1,
            flap_prob: 0.01,
            seed: 1,
        }
    }
}

/// Attribute names the simulator perturbs.
const DELAY_ATTRS: [&str; 3] = ["minDelay", "avgDelay", "maxDelay"];

/// Attribute marking node availability (`up`, boolean).
pub const UP_ATTR: &str = "up";

/// The monitoring simulator.
pub struct MonitorSim {
    params: MonitorParams,
    rng: StdRng,
    ticks: u64,
}

impl MonitorSim {
    /// New simulator.
    pub fn new(params: MonitorParams) -> Self {
        MonitorSim {
            rng: StdRng::seed_from_u64(params.seed),
            params,
            ticks: 0,
        }
    }

    /// Ticks applied so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Apply one measurement epoch to the named model. Returns false when
    /// the model does not exist. The swap-in goes through
    /// [`ModelRegistry::update`], so every tick bumps the model's
    /// [`crate::ModelEpoch`] — downstream filter caches treat monitoring
    /// churn exactly like any other model change.
    pub fn tick(&mut self, registry: &ModelRegistry, model: &str) -> bool {
        self.ticks += 1;
        let jitter = self.params.delay_jitter;
        let flap = self.params.flap_prob;
        let rng = &mut self.rng;
        registry
            .update(model, |net| {
                for e in net.edge_refs().collect::<Vec<_>>() {
                    for attr in DELAY_ATTRS {
                        if let Some(d) = net
                            .edge_attr_by_name(e.id, attr)
                            .and_then(AttrValue::as_num)
                        {
                            let factor = 1.0 + rng.random_range(-jitter..=jitter);
                            net.set_edge_attr(e.id, attr, (d * factor).max(0.01));
                        }
                    }
                }
                let n = net.node_count();
                for i in 0..n {
                    if rng.random_bool(flap.clamp(0.0, 1.0)) {
                        let node = NodeId(i as u32);
                        let up = net
                            .node_attr_by_name(node, UP_ATTR)
                            .and_then(AttrValue::as_bool)
                            .unwrap_or(true);
                        net.set_node_attr(node, UP_ATTR, !up);
                    }
                }
            })
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, Network};

    fn model() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let e = h.add_edge(a, b);
        h.set_edge_attr(e, "avgDelay", 100.0);
        h.set_edge_attr(e, "minDelay", 90.0);
        h.set_edge_attr(e, "maxDelay", 110.0);
        h
    }

    fn avg(reg: &ModelRegistry) -> f64 {
        reg.model("m")
            .unwrap()
            .edge_attr_by_name(netgraph::EdgeId(0), "avgDelay")
            .and_then(AttrValue::as_num)
            .unwrap()
    }

    #[test]
    fn tick_perturbs_delays_within_bounds() {
        let reg = ModelRegistry::new();
        reg.register("m", model());
        let mut sim = MonitorSim::new(MonitorParams {
            delay_jitter: 0.1,
            flap_prob: 0.0,
            seed: 3,
        });
        let before = avg(&reg);
        assert!(sim.tick(&reg, "m"));
        let after = avg(&reg);
        assert_ne!(before, after);
        assert!((after / before - 1.0).abs() <= 0.1 + 1e-9);
        assert_eq!(sim.ticks(), 1);
    }

    #[test]
    fn unknown_model_returns_false() {
        let reg = ModelRegistry::new();
        let mut sim = MonitorSim::new(MonitorParams::default());
        assert!(!sim.tick(&reg, "missing"));
    }

    #[test]
    fn flapping_toggles_up_attribute() {
        let reg = ModelRegistry::new();
        reg.register("m", model());
        let mut sim = MonitorSim::new(MonitorParams {
            delay_jitter: 0.0,
            flap_prob: 1.0, // every node flips every tick
            seed: 4,
        });
        sim.tick(&reg, "m");
        let net = reg.model("m").unwrap();
        for i in 0..2 {
            assert_eq!(
                net.node_attr_by_name(NodeId(i), UP_ATTR)
                    .and_then(AttrValue::as_bool),
                Some(false)
            );
        }
        sim.tick(&reg, "m");
        let net = reg.model("m").unwrap();
        for i in 0..2 {
            assert_eq!(
                net.node_attr_by_name(NodeId(i), UP_ATTR)
                    .and_then(AttrValue::as_bool),
                Some(true)
            );
        }
    }

    #[test]
    fn drift_changes_query_answers_over_time() {
        let reg = ModelRegistry::new();
        reg.register("m", model());
        let mut sim = MonitorSim::new(MonitorParams {
            delay_jitter: 0.15,
            flap_prob: 0.0,
            seed: 5,
        });
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        // Window pinned to the initial value: drifts out eventually.
        let constraint = "rEdge.avgDelay >= 99.0 && rEdge.avgDelay <= 101.0";
        let mut lost_later = false;
        let matched_initially = {
            let host = reg.model("m").unwrap();
            let engine = netembed::Engine::new(&host);
            !engine
                .embed(&q, constraint, &netembed::Options::default())
                .unwrap()
                .mappings
                .is_empty()
        };
        for _ in 0..20 {
            sim.tick(&reg, "m");
            let host = reg.model("m").unwrap();
            let engine = netembed::Engine::new(&host);
            if engine
                .embed(&q, constraint, &netembed::Options::default())
                .unwrap()
                .mappings
                .is_empty()
            {
                lost_later = true;
                break;
            }
        }
        assert!(matched_initially);
        assert!(
            lost_later,
            "15% jitter never left the ±1% window in 20 ticks"
        );
    }
}

//! Interactive requirement negotiation.
//!
//! §III: "An interactive service would facilitate the adjustment
//! (negotiation) of the requirements if the query cannot be satisfied."
//! §VI-B adds that keeping the constraint expression separate from the
//! topology lets a user "begin with more stringent constraints and relax
//! them if there is no compliant mapping". This module automates that
//! loop: the caller supplies a constraint *template* parameterized by a
//! relaxation level, and `negotiate` walks the levels in order until a
//! feasible embedding appears (or the levels run out).

use netembed::{Engine, Mapping, Options, Outcome, ProblemError};
use netgraph::Network;

/// Result of a negotiation run.
#[derive(Debug, Clone)]
pub enum NegotiationOutcome {
    /// Satisfied at `levels[index]`; the mappings found there.
    Satisfied {
        /// Index into the supplied levels.
        index: usize,
        /// The relaxation level value.
        level: f64,
        /// Feasible mappings at that level.
        mappings: Vec<Mapping>,
    },
    /// Every level failed definitively (complete-empty results).
    Exhausted,
    /// A level timed out without finding anything — feasibility unknown,
    /// negotiation stops to respect the time budget.
    Inconclusive {
        /// Level index that timed out.
        index: usize,
    },
}

/// Try `levels` in order, building the constraint with `template` and
/// running the engine until one level yields at least one embedding.
pub fn negotiate(
    host: &Network,
    query: &Network,
    levels: &[f64],
    options: &Options,
    template: impl Fn(f64) -> String,
) -> Result<NegotiationOutcome, ProblemError> {
    let engine = Engine::new(host);
    for (index, &level) in levels.iter().enumerate() {
        let constraint = template(level);
        let result = engine.embed(query, &constraint, options)?;
        match result.outcome {
            Outcome::Complete(mappings) | Outcome::Partial(mappings) if !mappings.is_empty() => {
                return Ok(NegotiationOutcome::Satisfied {
                    index,
                    level,
                    mappings,
                });
            }
            Outcome::Inconclusive => {
                return Ok(NegotiationOutcome::Inconclusive { index });
            }
            _ => {} // definitive empty: relax further
        }
    }
    Ok(NegotiationOutcome::Exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Direction, NodeId};

    fn host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for (i, d) in [25.0, 35.0, 45.0, 55.0].iter().enumerate() {
            let e = h.add_edge(ids[i], ids[(i + 1) % 4]);
            h.set_edge_attr(e, "avgDelay", *d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q
    }

    #[test]
    fn relaxation_finds_first_feasible_level() {
        let h = host();
        let q = edge_query();
        // Levels are delay budgets: 10 and 20 fail, 30 admits d=25.
        let out = negotiate(
            &h,
            &q,
            &[10.0, 20.0, 30.0, 60.0],
            &Options::default(),
            |lvl| format!("rEdge.avgDelay <= {lvl}"),
        )
        .unwrap();
        match out {
            NegotiationOutcome::Satisfied {
                index,
                level,
                mappings,
            } => {
                assert_eq!(index, 2);
                assert_eq!(level, 30.0);
                assert_eq!(mappings.len(), 2); // d=25 edge, two orientations
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exhausted_when_nothing_fits() {
        let h = host();
        let q = edge_query();
        let out = negotiate(&h, &q, &[1.0, 2.0], &Options::default(), |lvl| {
            format!("rEdge.avgDelay <= {lvl}")
        })
        .unwrap();
        assert!(matches!(out, NegotiationOutcome::Exhausted));
    }

    #[test]
    fn parse_error_propagates() {
        let h = host();
        let q = edge_query();
        assert!(negotiate(&h, &q, &[1.0], &Options::default(), |_| "1 +".to_string()).is_err());
    }

    #[test]
    fn tightest_satisfiable_window_is_reported() {
        let h = host();
        let q = edge_query();
        // Percent-style relaxation around 40ms, as in the paper's ±10%
        // example: widen until the 35/45 edges fall inside.
        let out = negotiate(
            &h,
            &q,
            &[0.01, 0.05, 0.15, 0.5],
            &Options::default(),
            |tol| {
                format!(
                    "rEdge.avgDelay >= {} && rEdge.avgDelay <= {}",
                    40.0 * (1.0 - tol),
                    40.0 * (1.0 + tol)
                )
            },
        )
        .unwrap();
        match out {
            NegotiationOutcome::Satisfied { index, .. } => assert_eq!(index, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Interactive requirement negotiation.
//!
//! §III: "An interactive service would facilitate the adjustment
//! (negotiation) of the requirements if the query cannot be satisfied."
//! §VI-B adds that keeping the constraint expression separate from the
//! topology lets a user "begin with more stringent constraints and relax
//! them if there is no compliant mapping". This module automates that
//! loop: the caller supplies a constraint *template* parameterized by a
//! relaxation level, and [`NetEmbedService::negotiate`] walks the levels
//! in order until a feasible embedding appears (or the levels run out).
//!
//! Each level runs through a [`PreparedQuery`](crate::PreparedQuery), so
//! the loop inherits the session machinery: per-level filters are
//! memoized in the service's epoch-keyed cache — *re*-negotiating after
//! nothing changed (a common interactive pattern: the user re-asks with
//! the same levels) rebuilds no filter at all, while any model update
//! transparently invalidates and rebuilds — and all levels share one
//! leased scratch + worker pool.

use crate::{NetEmbedService, ServiceError};
use netembed::{Mapping, Options, Outcome};
use netgraph::Network;

/// Result of a negotiation run.
#[derive(Debug, Clone)]
pub enum NegotiationOutcome {
    /// Satisfied at `levels[index]`; the mappings found there.
    Satisfied {
        /// Index into the supplied levels.
        index: usize,
        /// The relaxation level value.
        level: f64,
        /// Feasible mappings at that level.
        mappings: Vec<Mapping>,
    },
    /// Every level failed definitively (complete-empty results).
    Exhausted,
    /// A level timed out without finding anything — feasibility unknown,
    /// negotiation stops to respect the time budget.
    Inconclusive {
        /// Level index that timed out.
        index: usize,
    },
}

impl NetEmbedService {
    /// Try `levels` in order against the registered model `host`,
    /// building the constraint with `template` and running the engine
    /// until one level yields at least one embedding.
    pub fn negotiate(
        &self,
        host: &str,
        query: &Network,
        levels: &[f64],
        options: &Options,
        template: impl Fn(f64) -> String,
    ) -> Result<NegotiationOutcome, ServiceError> {
        // One handle for the whole loop: the query is cloned and
        // fingerprinted once, and each level just swaps the constraint
        // in ([`crate::PreparedQuery::reconstrain`]).
        let mut handle: Option<crate::PreparedQuery<'_>> = None;
        for (index, &level) in levels.iter().enumerate() {
            let constraint = template(level);
            let prepared = match handle.as_mut() {
                Some(p) => {
                    p.reconstrain(&constraint)?;
                    p
                }
                None => handle.insert(self.prepare(host, query.clone(), &constraint)?),
            };
            let response = prepared.run(options)?;
            match response.outcome {
                Outcome::Complete(mappings) | Outcome::Partial(mappings)
                    if !mappings.is_empty() =>
                {
                    return Ok(NegotiationOutcome::Satisfied {
                        index,
                        level,
                        mappings,
                    });
                }
                Outcome::Inconclusive => {
                    return Ok(NegotiationOutcome::Inconclusive { index });
                }
                _ => {} // definitive empty: relax further
            }
        }
        Ok(NegotiationOutcome::Exhausted)
    }
}

/// Standalone negotiation against a bare [`Network`] — a thin
/// back-compat wrapper that registers `host` in a throwaway service and
/// delegates to [`NetEmbedService::negotiate`]. Callers that negotiate
/// repeatedly should hold a service and call the method instead: this
/// wrapper's filter cache dies with the call.
pub fn negotiate(
    host: &Network,
    query: &Network,
    levels: &[f64],
    options: &Options,
    template: impl Fn(f64) -> String,
) -> Result<NegotiationOutcome, ServiceError> {
    let svc = NetEmbedService::new();
    svc.registry().register("@negotiate", host.clone());
    svc.negotiate("@negotiate", query, levels, options, template)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceError;
    use netgraph::{Direction, NodeId};

    fn host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for (i, d) in [25.0, 35.0, 45.0, 55.0].iter().enumerate() {
            let e = h.add_edge(ids[i], ids[(i + 1) % 4]);
            h.set_edge_attr(e, "avgDelay", *d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q
    }

    #[test]
    fn relaxation_finds_first_feasible_level() {
        let h = host();
        let q = edge_query();
        // Levels are delay budgets: 10 and 20 fail, 30 admits d=25.
        let out = negotiate(
            &h,
            &q,
            &[10.0, 20.0, 30.0, 60.0],
            &Options::default(),
            |lvl| format!("rEdge.avgDelay <= {lvl}"),
        )
        .unwrap();
        match out {
            NegotiationOutcome::Satisfied {
                index,
                level,
                mappings,
            } => {
                assert_eq!(index, 2);
                assert_eq!(level, 30.0);
                assert_eq!(mappings.len(), 2); // d=25 edge, two orientations
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exhausted_when_nothing_fits() {
        let h = host();
        let q = edge_query();
        let out = negotiate(&h, &q, &[1.0, 2.0], &Options::default(), |lvl| {
            format!("rEdge.avgDelay <= {lvl}")
        })
        .unwrap();
        assert!(matches!(out, NegotiationOutcome::Exhausted));
    }

    #[test]
    fn parse_error_surfaces_as_bad_constraint() {
        let h = host();
        let q = edge_query();
        let err =
            negotiate(&h, &q, &[1.0], &Options::default(), |_| "1 +".to_string()).unwrap_err();
        assert!(matches!(err, ServiceError::BadConstraint(_)), "{err}");
    }

    #[test]
    fn tightest_satisfiable_window_is_reported() {
        let h = host();
        let q = edge_query();
        // Percent-style relaxation around 40ms, as in the paper's ±10%
        // example: widen until the 35/45 edges fall inside.
        let out = negotiate(
            &h,
            &q,
            &[0.01, 0.05, 0.15, 0.5],
            &Options::default(),
            |tol| {
                format!(
                    "rEdge.avgDelay >= {} && rEdge.avgDelay <= {}",
                    40.0 * (1.0 - tol),
                    40.0 * (1.0 + tol)
                )
            },
        )
        .unwrap();
        match out {
            NegotiationOutcome::Satisfied { index, .. } => assert_eq!(index, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn renegotiation_reuses_per_level_filters() {
        // The interactive pattern: same levels asked twice with no model
        // change in between — the second pass must be all cache hits.
        let svc = NetEmbedService::new();
        svc.registry().register("t", host());
        let q = edge_query();
        let levels = [10.0, 20.0, 30.0];
        let template = |lvl: f64| format!("rEdge.avgDelay <= {lvl}");
        let first = svc
            .negotiate("t", &q, &levels, &Options::default(), template)
            .unwrap();
        assert!(matches!(first, NegotiationOutcome::Satisfied { .. }));
        let misses_after_first = svc.cache().misses();
        let hits_after_first = svc.cache().hits();
        let second = svc
            .negotiate("t", &q, &levels, &Options::default(), template)
            .unwrap();
        assert!(matches!(second, NegotiationOutcome::Satisfied { .. }));
        assert_eq!(
            svc.cache().misses(),
            misses_after_first,
            "re-negotiation rebuilt a filter"
        );
        assert_eq!(svc.cache().hits(), hits_after_first + 3, "3 levels, 3 hits");

        // A model update invalidates: the third pass rebuilds each level
        // against the new epoch.
        svc.registry().update("t", |_| {}).unwrap();
        svc.negotiate("t", &q, &levels, &Options::default(), template)
            .unwrap();
        assert_eq!(svc.cache().misses(), misses_after_first + 3);
    }
}

//! Partitioned (hierarchical) query processing — the paper's §VIII
//! decentralization direction: *"for truly large-scale networks, a
//! complete view of the network may not be available to a single domain
//! … we are currently looking into a hierarchical approach to a
//! decentralized implementation of NETEMBED."*
//!
//! The host network is partitioned into *regions* by a categorical node
//! attribute (e.g. the `cluster` attribute of the PlanetLab-like hosts, or
//! `domain` of transit-stub topologies). A query is first fanned out to
//! every region in parallel — each worker runs the ordinary engine on its
//! region's induced subnetwork, exactly as a per-domain NETEMBED replica
//! would — and any region-local embedding is translated back to global
//! node ids and returned. Only when no region can host the query alone
//! does the coordinator fall back to the full network, preserving
//! completeness.
//!
//! Region-first search is sound (a region is an induced subgraph, so a
//! region-local embedding is a global embedding) and is a large win for
//! intra-domain queries on hosts whose regions are small relative to the
//! whole.

use crate::ServiceError;
use netembed::{Engine, Mapping, Options, Outcome, SearchMode};
use netgraph::{AttrValue, Network, NodeId};
use std::sync::Arc;

/// A host partitioned into attribute-defined regions.
pub struct PartitionedHost {
    full: Arc<Network>,
    regions: Vec<Region>,
}

struct Region {
    /// Attribute value defining the region.
    label: String,
    /// Induced subnetwork.
    net: Arc<Network>,
    /// Region node index → global [`NodeId`].
    origin: Vec<NodeId>,
}

/// Where a result came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Locality {
    /// Satisfied entirely inside one region.
    Region(String),
    /// Required the cross-region fallback on the full network.
    Global,
}

/// Result of a partitioned query.
#[derive(Debug, Clone)]
pub struct PartitionedResponse {
    /// Classified outcome with **global** node ids.
    pub outcome: Outcome,
    /// Which tier answered.
    pub locality: Locality,
}

impl PartitionedHost {
    /// Partition `host` by the categorical/numeric node attribute `attr`.
    /// Nodes missing the attribute form their own `"<none>"` region.
    pub fn new(host: Network, attr: &str) -> Self {
        let mut groups: Vec<(String, Vec<NodeId>)> = Vec::new();
        for v in host.node_ids() {
            let label = host
                .node_attr_by_name(v, attr)
                .map(AttrValue::to_string)
                .unwrap_or_else(|| "<none>".to_string());
            match groups.iter_mut().find(|(l, _)| *l == label) {
                Some((_, members)) => members.push(v),
                None => groups.push((label, vec![v])),
            }
        }
        let regions = groups
            .into_iter()
            .map(|(label, members)| {
                let (net, origin) = host.induced_subgraph(&members);
                Region {
                    label,
                    net: Arc::new(net),
                    origin,
                }
            })
            .collect();
        PartitionedHost {
            full: Arc::new(host),
            regions,
        }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Region labels in partition order.
    pub fn region_labels(&self) -> Vec<&str> {
        self.regions.iter().map(|r| r.label.as_str()).collect()
    }

    /// The full (unpartitioned) host.
    pub fn full(&self) -> &Network {
        &self.full
    }

    /// Run `query` region-first, falling back to the full network.
    ///
    /// Regions are searched concurrently; the first region (in partition
    /// order) with a non-empty result wins, so results are deterministic.
    /// The fallback runs with the caller's exact options; region probes
    /// run in first-match mode (they only decide *whether* a region can
    /// host the query — the caller's mode applies to the winning tier).
    pub fn submit(
        &self,
        query: &Network,
        constraint: &str,
        options: &Options,
    ) -> Result<PartitionedResponse, ServiceError> {
        // Probe regions in parallel.
        let mut probes: Vec<Option<bool>> = vec![None; self.regions.len()];
        crossbeam_scope(|scope: &mut Vec<std::thread::JoinHandle<(usize, bool)>>| {
            for (i, region) in self.regions.iter().enumerate() {
                if region.net.node_count() < query.node_count() {
                    probes[i] = Some(false);
                    continue;
                }
                let net = region.net.clone();
                let query = query.clone();
                let constraint = constraint.to_string();
                let probe_options = Options {
                    mode: SearchMode::First,
                    ..options.clone()
                };
                scope.push(std::thread::spawn(move || {
                    let engine = Engine::new(&net);
                    let ok = engine
                        .embed(&query, &constraint, &probe_options)
                        .map(|r| !r.mappings.is_empty())
                        .unwrap_or(false);
                    (i, ok)
                }));
            }
        })
        .into_iter()
        .for_each(|(i, ok)| probes[i] = Some(ok));

        // First hosting region in partition order wins.
        for (i, probe) in probes.iter().enumerate() {
            if *probe != Some(true) {
                continue;
            }
            let region = &self.regions[i];
            let engine = Engine::new(&region.net);
            let result = engine.embed(query, constraint, options)?;
            if result.mappings.is_empty() {
                continue; // probe raced a timeout; try the next region
            }
            let outcome = translate_outcome(result.outcome, &region.origin);
            return Ok(PartitionedResponse {
                outcome,
                locality: Locality::Region(region.label.clone()),
            });
        }

        // Cross-region fallback: the full network, full completeness.
        let engine = Engine::new(&self.full);
        let result = engine.embed(query, constraint, options)?;
        Ok(PartitionedResponse {
            outcome: result.outcome,
            locality: Locality::Global,
        })
    }
}

/// Join-all helper (std threads; the probe fan-out is coarse-grained).
fn crossbeam_scope<T>(fill: impl FnOnce(&mut Vec<std::thread::JoinHandle<T>>)) -> Vec<T> {
    let mut handles = Vec::new();
    fill(&mut handles);
    handles
        .into_iter()
        .map(|h| h.join().expect("probe thread panicked"))
        .collect()
}

fn translate_outcome(outcome: Outcome, origin: &[NodeId]) -> Outcome {
    let translate = |m: &Mapping| -> Mapping {
        Mapping::new(m.iter().map(|(_, r)| origin[r.index()]).collect())
    };
    match outcome {
        Outcome::Complete(ms) => {
            // Region-complete is NOT globally complete (other regions and
            // cross-region placements exist) — downgrade to partial.
            Outcome::Partial(ms.iter().map(translate).collect())
        }
        Outcome::Partial(ms) => Outcome::Partial(ms.iter().map(translate).collect()),
        Outcome::Inconclusive => Outcome::Inconclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    /// Two fully-meshed clusters of 4 joined by one inter-cluster edge.
    fn two_cluster_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let mut ids = Vec::new();
        for c in 0..2 {
            for i in 0..4 {
                let n = h.add_node(format!("c{c}n{i}"));
                h.set_node_attr(n, "cluster", c as f64);
                ids.push(n);
            }
        }
        for c in 0..2 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let e = h.add_edge(ids[c * 4 + i], ids[c * 4 + j]);
                    h.set_edge_attr(e, "d", 5.0);
                }
            }
        }
        let bridge = h.add_edge(ids[0], ids[4]);
        h.set_edge_attr(bridge, "d", 100.0);
        h
    }

    fn triangle_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
        for i in 0..3 {
            q.add_edge(ids[i], ids[(i + 1) % 3]);
        }
        q
    }

    #[test]
    fn partitioning_by_cluster() {
        let p = PartitionedHost::new(two_cluster_host(), "cluster");
        assert_eq!(p.region_count(), 2);
        assert_eq!(p.region_labels(), vec!["0", "1"]);
    }

    #[test]
    fn intra_region_query_answered_locally() {
        let p = PartitionedHost::new(two_cluster_host(), "cluster");
        let q = triangle_query();
        let resp = p
            .submit(&q, "rEdge.d <= 10.0", &Options::default())
            .unwrap();
        assert!(matches!(resp.locality, Locality::Region(_)));
        let mappings = resp.outcome.mappings();
        assert!(!mappings.is_empty());
        // Global ids must be valid in the full host; verify independently.
        let problem = netembed::Problem::new(&q, p.full(), "rEdge.d <= 10.0").unwrap();
        for m in mappings {
            netembed::check_mapping(&problem, m).unwrap();
        }
        // Region-complete results are downgraded to partial.
        assert!(matches!(resp.outcome, Outcome::Partial(_)));
    }

    #[test]
    fn cross_region_query_falls_back_to_global() {
        let p = PartitionedHost::new(two_cluster_host(), "cluster");
        // An edge requiring the 100ms bridge: no single region has it.
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        let resp = p
            .submit(&q, "rEdge.d >= 50.0", &Options::default())
            .unwrap();
        assert_eq!(resp.locality, Locality::Global);
        assert_eq!(resp.outcome.mappings().len(), 2); // bridge, 2 orientations
        assert!(matches!(resp.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn infeasible_query_is_globally_definitive() {
        let p = PartitionedHost::new(two_cluster_host(), "cluster");
        let q = triangle_query();
        let resp = p.submit(&q, "rEdge.d > 1e9", &Options::default()).unwrap();
        assert_eq!(resp.locality, Locality::Global);
        assert!(resp.outcome.definitively_infeasible());
    }

    #[test]
    fn query_larger_than_any_region_skips_probes() {
        let p = PartitionedHost::new(two_cluster_host(), "cluster");
        // 5-node query cannot fit a 4-node region.
        let mut q = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..5).map(|i| q.add_node(format!("q{i}"))).collect();
        for w in ids.windows(2) {
            q.add_edge(w[0], w[1]);
        }
        let resp = p.submit(&q, "true", &Options::default()).unwrap();
        assert_eq!(resp.locality, Locality::Global);
        assert!(resp.outcome.found_any());
    }

    #[test]
    fn missing_attribute_forms_own_region() {
        let mut h = two_cluster_host();
        h.add_node("orphan");
        let p = PartitionedHost::new(h, "cluster");
        assert_eq!(p.region_count(), 3);
        assert!(p.region_labels().contains(&"<none>"));
    }
}

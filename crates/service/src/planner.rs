//! Cross-request planner: a coalescing request queue over
//! [`PreparedQuery`](crate::PreparedQuery)'s machinery.
//!
//! PR 4 made amortization *session*-scoped: one `PreparedQuery` handle
//! reuses its compiled problem, cached filter and leased scratch across
//! its own runs. But two **independent clients** submitting the same
//! query against the same host still each pay their own prepare, their
//! own cache probe and their own dispatch. The [`Planner`] closes that
//! gap — the ROADMAP's cross-request amortization layer:
//!
//! * [`Planner::submit`] enqueues a [`PlannedRequest`] and returns a
//!   [`Ticket`]; compatible pending requests — same **grouping key**
//!   `(host, model epoch, query fingerprint, constraint)`, which is
//!   exactly a [`FilterKey`] — join one *group*;
//! * each group is dispatched through **one** prepared pipeline: one
//!   constraint parse/lint (done once when the group is created), one
//!   compiled [`Problem`], one filter build **or** cache hit pinned for
//!   the whole group, one leased warm scratch/pool. Every member still
//!   gets its *own* engine run under its *own* [`Options`], so results
//!   are identical to isolated sequential submits;
//! * results fan back to the per-request tickets, with per-request
//!   deadlines respected and group-member failures isolated (one
//!   member's timeout or verification failure never poisons its
//!   group-mates).
//!
//! ## Grouping-key invariants
//!
//! Two requests share a group only if **every** component of the
//! [`FilterKey`] matches:
//!
//! * **host + epoch** — the model snapshot (`Arc<Network>`, epoch) is
//!   captured at *enqueue*; a registry epoch bump between enqueue and
//!   dispatch therefore **splits the group**: pre-bump members run
//!   against the snapshot they saw at submission, post-bump members
//!   form a new group against the new model. Members never observe a
//!   model newer (or older) than their submission point;
//! * **query fingerprint** — the 128-bit structural
//!   [`network_fingerprint`](crate::cache::network_fingerprint), so
//!   distinct query networks never share a compiled problem;
//! * **constraint** — verbatim source text, so one parse/lint per
//!   group is sound.
//!
//! Per-member `Options` (algorithm, mode, seed, timeout…) are *not*
//! part of the key: they don't affect the shared stages, only the
//! per-member run.
//!
//! ## Dispatch model: waiter-driven group commit
//!
//! The planner owns **no threads**. Dispatch is driven by whichever
//! ticket is blocked in [`Ticket::wait`]: one waiter at a time becomes
//! the *dispatcher*, pops the oldest group and executes it for
//! everyone; the rest park until their result lands or the dispatcher
//! role frees up. Serializing dispatch is what makes coalescing emerge
//! under load with no timing windows (classic group commit): while one
//! group runs, a burst of equivalent arrivals accumulates into a single
//! next group, which then shares one pipeline. A burst of N equivalent
//! concurrent requests against a cold cache thus performs exactly one
//! filter build, provable from counters:
//! `Σ filter_cache_hits + Σ coalesced_requests == N − 1`
//! over the N responses, under **every** interleaving (each request
//! either builds, hits the shared cache, or rides the group pin).
//!
//! ## Deadlines and cancellation
//!
//! A member's `Options::timeout` is measured from **enqueue**: time
//! spent queued behind other groups counts against its budget, and a
//! member whose budget is exhausted when its turn comes is answered
//! with a timed-out [`Outcome::Inconclusive`] (its `elapsed` reporting
//! the queue wait) without running — and without disturbing its
//! group-mates. Dropping a [`Ticket`] before [`Ticket::wait`] cancels
//! the request: a still-queued member is unlinked from its group on the
//! spot, a member already being dispatched has its result discarded at
//! delivery — either way no queue slot, result slot or cancellation
//! mark survives the ticket.

use crate::cache::FilterKey;
use crate::{NetEmbedService, QueryRequest, QueryResponse, ServiceError};
use cexpr::Expr;
use netembed::{FilterMatrix, Options, Outcome, Problem, SearchStats};
use netgraph::Network;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A request handed to the planner queue. Identical in shape to a
/// plain [`QueryRequest`] — the planner differs in *how* it executes
/// (grouped, coalesced), not in what it accepts.
pub type PlannedRequest = QueryRequest;

/// One enqueued request awaiting dispatch.
struct Member {
    id: u64,
    options: Options,
    enqueued: Instant,
}

/// Pending requests sharing one grouping key, model snapshot and parsed
/// constraint — dispatched together through one prepared pipeline.
struct PendingGroup {
    key: FilterKey,
    /// Model snapshot captured when the group was created; every member
    /// runs against exactly this version (see module docs).
    model: Arc<Network>,
    query: Network,
    /// Parsed + type-linted once per group, at creation.
    expr: Expr,
    members: Vec<Member>,
}

struct PlannerState {
    /// Open groups in creation (and therefore dispatch) order.
    groups: VecDeque<PendingGroup>,
    /// Delivered results awaiting pickup by their tickets.
    results: HashMap<u64, Result<QueryResponse, ServiceError>>,
    /// Cancelled ids whose member is currently being dispatched (a
    /// still-queued cancel unlinks the member directly instead).
    cancelled: HashSet<u64>,
    /// True while some waiter is executing a group; dispatch is
    /// serialized — that is what makes arrivals coalesce (module docs).
    dispatching: bool,
    next_id: u64,
}

/// The coalescing cross-request queue. Create one per service with
/// [`NetEmbedService::planner`]; share it by reference among client
/// threads ([`Planner::submit`]/[`Planner::run`] take `&self`).
pub struct Planner<'svc> {
    svc: &'svc NetEmbedService,
    state: Mutex<PlannerState>,
    /// One condvar for everything: result delivery and dispatcher-role
    /// handoff both go through `notify_all` (waiters re-check their own
    /// predicate under the state lock, so wakeups are never lost).
    wake: Condvar,
    groups_dispatched: AtomicU64,
    coalesced_total: AtomicU64,
}

impl NetEmbedService {
    /// A coalescing request queue over this service (see
    /// [`Planner`]). Cheap; independent planners don't share queues,
    /// but they do share the service's registry, filter cache (with its
    /// in-flight build dedup) and scratch pool.
    pub fn planner(&self) -> Planner<'_> {
        Planner {
            svc: self,
            state: Mutex::new(PlannerState {
                groups: VecDeque::new(),
                results: HashMap::new(),
                cancelled: HashSet::new(),
                dispatching: false,
                next_id: 0,
            }),
            wake: Condvar::new(),
            groups_dispatched: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
        }
    }
}

/// Human-readable form of a caught panic payload (the `&str`/`String`
/// cases `panic!` actually produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resets the `dispatching` flag (and wakes the queue) if group
/// execution itself unwinds, so the dispatcher role is never wedged.
/// Per-member panics never reach this — `execute` catches them and
/// delivers [`ServiceError::Internal`] to the affected member, so
/// group-mates always receive their results.
struct DispatchGuard<'a, 'svc> {
    planner: &'a Planner<'svc>,
}

impl Drop for DispatchGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = lock_state(&self.planner.state);
        st.dispatching = false;
        drop(st);
        self.planner.wake.notify_all();
    }
}

/// The planner's bookkeeping runs outside any unwind-prone code, so a
/// poisoned lock can only mean a panic *between* two bookkeeping steps
/// — continuing with the inner state is sound (same argument as the
/// worker pool's lock helper).
fn lock_state<'a>(m: &'a Mutex<PlannerState>) -> std::sync::MutexGuard<'a, PlannerState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<'svc> Planner<'svc> {
    /// The service this planner dispatches into.
    pub fn service(&self) -> &'svc NetEmbedService {
        self.svc
    }

    /// Enqueue a request; returns a [`Ticket`] to wait on. Fails fast —
    /// before taking a queue slot — on an unknown host and (for
    /// group-creating requests) on a constraint that doesn't parse or
    /// type-lint; a request joining an existing group inherits that
    /// group's already-validated constraint, which is textually
    /// identical by the grouping key.
    pub fn submit(&self, request: &PlannedRequest) -> Result<Ticket<'_, 'svc>, ServiceError> {
        let (model, epoch) = self
            .svc
            .registry()
            .get(&request.host)
            .ok_or_else(|| ServiceError::UnknownHost(request.host.clone()))?;
        let key = FilterKey {
            host: request.host.clone(),
            epoch,
            query_hash: crate::cache::network_fingerprint(&request.query),
            constraint: request.constraint.clone(),
        };
        let enqueued = Instant::now();
        // Fast path: join an existing open group. Only cheap work under
        // the queue lock.
        let joined = {
            let mut st = lock_state(&self.state);
            // Allocate the id up front (an unused id on the miss path
            // is a harmless gap — ids only need uniqueness).
            let id = st.next_id;
            st.next_id += 1;
            st.groups.iter_mut().find(|g| g.key == key).map(|group| {
                group.members.push(Member {
                    id,
                    options: request.options.clone(),
                    enqueued,
                });
                id
            })
        };
        let id = match joined {
            Some(id) => id,
            None => {
                // Group creation: parse/lint the constraint and clone
                // the query network with the lock *released* (both can
                // be arbitrarily large), then re-check — a racing
                // creator may have opened the group in the meantime, in
                // which case this request simply joins it and the spare
                // parse is discarded. Either way exactly one open group
                // per key exists.
                let expr = crate::parse_and_lint(&request.constraint)?;
                let query = request.query.clone();
                let mut st = lock_state(&self.state);
                let id = st.next_id;
                st.next_id += 1;
                let member = Member {
                    id,
                    options: request.options.clone(),
                    enqueued,
                };
                match st.groups.iter_mut().find(|g| g.key == key) {
                    Some(group) => group.members.push(member),
                    None => st.groups.push_back(PendingGroup {
                        key,
                        model,
                        query,
                        expr,
                        members: vec![member],
                    }),
                }
                id
            }
        };
        self.wake.notify_all();
        Ok(Ticket {
            planner: self,
            id,
            finished: false,
        })
    }

    /// Submit and wait: the blocking convenience for client threads.
    pub fn run(&self, request: &PlannedRequest) -> Result<QueryResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Groups that reached dispatch with at least one live member.
    pub fn groups_dispatched(&self) -> u64 {
        self.groups_dispatched.load(Ordering::Relaxed)
    }

    /// Requests that rode a group-mate's pinned filter instead of
    /// touching the shared cache (the planner-level sum of the
    /// per-response [`SearchStats::coalesced_requests`] counters).
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced_total.load(Ordering::Relaxed)
    }

    /// Members currently enqueued (across all open groups).
    pub fn pending_requests(&self) -> usize {
        lock_state(&self.state)
            .groups
            .iter()
            .map(|g| g.members.len())
            .sum()
    }

    /// Open groups awaiting dispatch (cancellation can leave a group
    /// empty; it is skipped, cheaply, when popped).
    pub fn pending_groups(&self) -> usize {
        lock_state(&self.state).groups.len()
    }

    /// Results delivered but not yet picked up by their tickets.
    /// Settles to zero once every live ticket has waited — cancelled
    /// tickets' results are discarded at delivery, not parked.
    pub fn undelivered_results(&self) -> usize {
        lock_state(&self.state).results.len()
    }

    /// True if `id` was cancelled while its group was being dispatched;
    /// consumes the mark.
    fn take_cancelled(&self, id: u64) -> bool {
        lock_state(&self.state).cancelled.remove(&id)
    }

    fn deliver(&self, id: u64, response: Result<QueryResponse, ServiceError>) {
        let mut st = lock_state(&self.state);
        if st.cancelled.remove(&id) {
            // The waiter is gone: discard instead of parking a result
            // nobody will claim.
            return;
        }
        st.results.insert(id, response);
        drop(st);
        self.wake.notify_all();
    }

    /// Execute one group end to end: compile once, lease one scratch,
    /// run every live member against the group's pinned filter, deliver
    /// per-member results. Runs on the dispatching waiter's thread with
    /// the queue lock *released* (only `deliver`/`take_cancelled` touch
    /// it, briefly).
    fn execute(&self, group: PendingGroup) {
        let PendingGroup {
            key,
            model,
            query,
            expr,
            members,
        } = group;
        if members.is_empty() {
            return; // fully-cancelled group: nothing to do
        }
        self.groups_dispatched.fetch_add(1, Ordering::Relaxed);
        // One compiled problem serves every member's search *and* the
        // re-verification of every mapping handed back.
        let problem = match Problem::from_parsed(&query, &model, &expr) {
            Ok(p) => p,
            Err(e) => {
                // Group-level failure: every member gets the same
                // (cloned) error — isolated failure semantics only
                // apply to per-member stages.
                for member in members {
                    self.deliver(member.id, Err(ServiceError::Problem(e.clone())));
                }
                return;
            }
        };
        let mut scratch = self.svc.checkout_scratch();
        // The group pin: the first member to obtain a filter (hit or
        // build) fixes the exact `Arc` every later member reuses —
        // same eviction immunity as a `PreparedQuery` batch.
        let mut pinned: Option<Arc<FilterMatrix>> = None;
        for member in &members {
            if self.take_cancelled(member.id) {
                continue;
            }
            let queued = member.enqueued.elapsed();
            let run_options = match member.options.timeout {
                Some(budget) => {
                    let remaining = budget.saturating_sub(queued);
                    if remaining.is_zero() {
                        // Deadline died in the queue: a timed-out
                        // member, not a poisoned group.
                        self.deliver(
                            member.id,
                            Ok(QueryResponse {
                                outcome: Outcome::Inconclusive,
                                stats: SearchStats {
                                    timed_out: true,
                                    elapsed: queued,
                                    ..SearchStats::default()
                                },
                            }),
                        );
                        continue;
                    }
                    Options {
                        timeout: Some(remaining),
                        ..member.options.clone()
                    }
                }
                None => member.options.clone(),
            };
            let had_pin = pinned.is_some();
            // Panic isolation: a panicking engine run (re-thrown from a
            // pool worker, a violated invariant) becomes *this member's*
            // `ServiceError::Internal` instead of unwinding the
            // dispatcher — group-mates still get their results, and the
            // possibly-inconsistent scratch is replaced, not reused or
            // parked.
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::prepared::run_cached(
                    self.svc.cache(),
                    &key,
                    &problem,
                    &run_options,
                    &mut scratch,
                    &mut pinned,
                )
                .and_then(|mut result| {
                    // Same safety net as every service path: never
                    // return a mapping the compiled problem can't
                    // re-verify.
                    for m in &result.mappings {
                        netembed::check_mapping(&problem, m)
                            .map_err(ServiceError::VerificationFailed)?;
                    }
                    if had_pin && result.stats.filter_cache_hits > 0 {
                        // This member rode the group pin: it never
                        // touched the shared cache, so the credit moves
                        // from `filter_cache_hits` to
                        // `coalesced_requests` — the counter identity
                        // in the module docs depends on the two being
                        // mutually exclusive.
                        result.stats.filter_cache_hits -= 1;
                        result.stats.coalesced_requests += 1;
                        self.coalesced_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(QueryResponse {
                        outcome: result.outcome,
                        stats: result.stats,
                    })
                })
            }));
            let response = match attempt {
                Ok(response) => response,
                Err(payload) => {
                    scratch = netembed::EmbedScratch::new();
                    Err(ServiceError::Internal(panic_message(&payload)))
                }
            };
            self.deliver(member.id, response);
        }
        self.svc.checkin_scratch(scratch);
    }
}

impl std::fmt::Debug for Planner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock_state(&self.state);
        f.debug_struct("Planner")
            .field("pending_groups", &st.groups.len())
            .field(
                "pending_requests",
                &st.groups.iter().map(|g| g.members.len()).sum::<usize>(),
            )
            .field("dispatching", &st.dispatching)
            .field("groups_dispatched", &self.groups_dispatched())
            .field("coalesced_total", &self.coalesced_total())
            .finish()
    }
}

/// A claim on one enqueued request. [`Ticket::wait`] blocks until the
/// result arrives — and, when the dispatcher role is free, *drives* the
/// queue itself (the planner owns no threads; see the module docs).
/// Dropping a ticket without waiting cancels the request.
#[must_use = "an unwaited ticket cancels its request when dropped"]
pub struct Ticket<'p, 'svc> {
    planner: &'p Planner<'svc>,
    id: u64,
    finished: bool,
}

impl Ticket<'_, '_> {
    /// Block until this request's result is available, dispatching
    /// pending groups (own and others') whenever no other waiter is.
    pub fn wait(mut self) -> Result<QueryResponse, ServiceError> {
        loop {
            let group = {
                let mut st = lock_state(&self.planner.state);
                loop {
                    if let Some(response) = st.results.remove(&self.id) {
                        self.finished = true;
                        return response;
                    }
                    if !st.dispatching {
                        if let Some(group) = st.groups.pop_front() {
                            st.dispatching = true;
                            break group;
                        }
                    }
                    st = self
                        .planner
                        .wake
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            // Became the dispatcher: execute with the lock released.
            // The guard frees the role (and wakes the queue) even on
            // unwind.
            let guard = DispatchGuard {
                planner: self.planner,
            };
            self.planner.execute(group);
            drop(guard);
        }
    }

    /// Cancel explicitly (equivalent to dropping the ticket).
    pub fn cancel(self) {
        // Drop does the work.
    }
}

impl Drop for Ticket<'_, '_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let mut st = lock_state(&self.planner.state);
        // Still queued? Unlink the member outright — the queue slot is
        // reclaimed immediately and no mark is needed.
        for group in st.groups.iter_mut() {
            if let Some(pos) = group.members.iter().position(|m| m.id == self.id) {
                group.members.remove(pos);
                return;
            }
        }
        // Mid-dispatch or already delivered: discard any parked result;
        // otherwise mark the id so the in-flight dispatch discards it
        // at delivery. `deliver`/`take_cancelled` each consume the
        // mark, so nothing leaks either way.
        if st.results.remove(&self.id).is_none() {
            st.cancelled.insert(self.id);
        }
    }
}

impl std::fmt::Debug for Ticket<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintFault;
    use netgraph::Direction;
    use std::time::Duration;

    fn triangle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let c = h.add_node("c");
        for (u, v, d) in [(a, b, 10.0), (b, c, 20.0), (a, c, 30.0)] {
            let e = h.add_edge(u, v);
            h.set_edge_attr(e, "avgDelay", d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        q
    }

    fn request(host: &str, constraint: &str) -> PlannedRequest {
        PlannedRequest {
            host: host.into(),
            query: edge_query(),
            constraint: constraint.into(),
            options: Options::default(),
        }
    }

    #[test]
    fn run_round_trip_matches_submit() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let planned = planner.run(&req).unwrap();
        let direct = svc.submit(&req).unwrap();
        assert_eq!(planned.mappings(), direct.mappings());
        assert_eq!(planned.outcome, direct.outcome);
        assert_eq!(planner.groups_dispatched(), 1);
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.undelivered_results(), 0);
    }

    #[test]
    fn submit_fails_fast_without_taking_a_slot() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        assert!(matches!(
            planner.submit(&request("nope", "true")),
            Err(ServiceError::UnknownHost(_))
        ));
        assert!(matches!(
            planner.submit(&request("plab", "1 +")),
            Err(ServiceError::BadConstraint(ConstraintFault::Parse(_)))
        ));
        assert!(matches!(
            planner.submit(&request("plab", "\"fast\" == 1")),
            Err(ServiceError::BadConstraint(ConstraintFault::Type(_)))
        ));
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.pending_groups(), 0);
    }

    #[test]
    fn equivalent_pending_requests_share_one_group() {
        // Nothing dispatches until someone waits, so the grouping of a
        // quiet enqueue phase is fully deterministic.
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let t1 = planner.submit(&req).unwrap();
        let t2 = planner.submit(&req).unwrap();
        let other = planner.submit(&request("plab", "true")).unwrap();
        assert_eq!(planner.pending_requests(), 3);
        assert_eq!(planner.pending_groups(), 2, "same key coalesces");
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        let r3 = other.wait().unwrap();
        assert_eq!(r1.mappings(), r2.mappings());
        assert_eq!(r1.mappings().len(), 2);
        assert_eq!(r3.mappings().len(), 6);
        // The second member rode the first one's pin.
        assert_eq!(r1.stats.coalesced_requests + r2.stats.coalesced_requests, 1);
        assert_eq!(planner.groups_dispatched(), 2);
        assert_eq!(planner.coalesced_total(), 1);
    }

    #[test]
    fn epoch_bump_between_enqueue_and_dispatch_splits_the_group() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        // Enqueued against the current epoch's snapshot...
        let before = planner.submit(&req).unwrap();
        // ...then the model changes before anything dispatches.
        svc.registry()
            .update("plab", |net| {
                for e in net.edge_refs().collect::<Vec<_>>() {
                    net.set_edge_attr(e.id, "avgDelay", 100.0);
                }
            })
            .unwrap();
        let after = planner.submit(&req).unwrap();
        assert_eq!(
            planner.pending_groups(),
            2,
            "an epoch bump must split the group"
        );
        // Each member sees exactly the snapshot it enqueued against.
        assert_eq!(before.wait().unwrap().mappings().len(), 2);
        assert_eq!(after.wait().unwrap().mappings().len(), 0);
        assert_eq!(planner.groups_dispatched(), 2);
        // Two distinct epochs ⇒ two designated builds, zero coalescing.
        assert_eq!(svc.cache().misses(), 2);
        assert_eq!(planner.coalesced_total(), 0);
    }

    #[test]
    fn cancelled_waiter_releases_its_queue_slot() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let doomed = planner.submit(&req).unwrap();
        assert_eq!(planner.pending_requests(), 1);
        drop(doomed);
        assert_eq!(
            planner.pending_requests(),
            0,
            "a cancelled queued member must be unlinked immediately"
        );
        // The emptied group is skipped; a fresh request still works and
        // nothing (slot, result, mark) leaks.
        let live = planner.submit(&req).unwrap();
        assert_eq!(live.wait().unwrap().mappings().len(), 2);
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.undelivered_results(), 0);
        assert_eq!(lock_state(&planner.state).cancelled.len(), 0);
    }

    #[test]
    fn explicit_cancel_equals_drop() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        planner
            .submit(&request("plab", "rEdge.avgDelay <= 15.0"))
            .unwrap()
            .cancel();
        assert_eq!(planner.pending_requests(), 0);
    }

    #[test]
    fn queue_expired_deadline_times_out_without_poisoning_group_mates() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        // Same grouping key (options are not part of it): one member
        // whose budget is already gone, one unlimited.
        let dead = planner
            .submit(&PlannedRequest {
                options: Options {
                    timeout: Some(Duration::ZERO),
                    ..Options::default()
                },
                ..request("plab", "rEdge.avgDelay <= 15.0")
            })
            .unwrap();
        let live = planner
            .submit(&request("plab", "rEdge.avgDelay <= 15.0"))
            .unwrap();
        assert_eq!(planner.pending_groups(), 1, "one group despite options");
        let live_resp = live.wait().unwrap();
        let dead_resp = dead.wait().unwrap();
        assert!(matches!(dead_resp.outcome, Outcome::Inconclusive));
        assert!(dead_resp.stats.timed_out);
        assert_eq!(
            dead_resp.stats.nodes_visited, 0,
            "an expired member must not have run"
        );
        assert_eq!(live_resp.mappings().len(), 2, "group-mate unharmed");
        assert!(matches!(live_resp.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn group_level_problem_error_reaches_every_member() {
        // A constraint that parses and lints but cannot compile against
        // the model (unknown attribute in strict-compile paths is fine
        // here — use a query bigger than the host instead, which is a
        // guaranteed `ProblemError` for every member).
        let svc = NetEmbedService::new();
        let mut tiny = Network::new(Direction::Undirected);
        tiny.add_node("only");
        svc.registry().register("tiny", tiny);
        let planner = svc.planner();
        let req = PlannedRequest {
            host: "tiny".into(),
            query: edge_query(),
            constraint: "true".into(),
            options: Options::default(),
        };
        let t1 = planner.submit(&req).unwrap();
        let t2 = planner.submit(&req).unwrap();
        assert!(matches!(t1.wait(), Err(ServiceError::Problem(_))));
        assert!(matches!(t2.wait(), Err(ServiceError::Problem(_))));
    }
}

//! Cross-request planner: a coalescing, **sharded** request queue over
//! [`PreparedQuery`](crate::PreparedQuery)'s machinery.
//!
//! PR 4 made amortization *session*-scoped: one `PreparedQuery` handle
//! reuses its compiled problem, cached filter and leased scratch across
//! its own runs. But two **independent clients** submitting the same
//! query against the same host still each pay their own prepare, their
//! own cache probe and their own dispatch. The [`Planner`] closes that
//! gap — the ROADMAP's cross-request amortization layer:
//!
//! * [`Planner::submit`] enqueues a [`PlannedRequest`] and returns a
//!   [`Ticket`]; compatible pending requests — same **grouping key**
//!   `(host, model epoch, query fingerprint, constraint)`, which is
//!   exactly a [`FilterKey`] — join one *group*;
//! * each group is dispatched through **one** prepared pipeline: one
//!   constraint parse/lint (done once when the group is created), one
//!   compiled [`Problem`], one filter build **or** cache hit pinned for
//!   the whole group, one leased warm scratch/pool. Every member still
//!   gets its *own* engine run under its *own* [`Options`], so results
//!   are identical to isolated sequential submits;
//! * results fan back to the per-request tickets, with per-request
//!   deadlines respected and group-member failures isolated (one
//!   member's timeout or verification failure never poisons its
//!   group-mates).
//!
//! ## Grouping-key invariants
//!
//! Two requests share a group only if **every** component of the
//! [`FilterKey`] matches:
//!
//! * **host + epoch** — the model snapshot (`Arc<Network>`, epoch) is
//!   captured at *enqueue*; a registry epoch bump between enqueue and
//!   dispatch therefore **splits the group**: pre-bump members run
//!   against the snapshot they saw at submission, post-bump members
//!   form a new group against the new model. Members never observe a
//!   model newer (or older) than their submission point;
//! * **query fingerprint** — the 128-bit structural
//!   [`network_fingerprint`](crate::cache::network_fingerprint), so
//!   distinct query networks never share a compiled problem;
//! * **constraint** — verbatim source text, so one parse/lint per
//!   group is sound.
//!
//! Per-member `Options` (algorithm, mode, seed, timeout…) are *not*
//! part of the key: they don't affect the shared stages, only the
//! per-member run.
//!
//! ## Dispatch model: sharded waiter-driven group commit
//!
//! The planner owns **no threads**. Its queue is split into `N`
//! *dispatch shards* (`N` =
//! [`NetEmbedService::planner_shards`]): a request's [`FilterKey`] is
//! hashed once at submit and routes the request — and every counter,
//! wait and wakeup it will ever touch — to exactly one shard. Each
//! shard is the old planner in miniature: its own pending-group list,
//! its own condvar, its own `dispatching` flag, and its own
//! [`OverloadStats`](crate::ServiceTelemetry) block (queue-depth gauge,
//! shed counters, dispatch-latency EWMA, histograms).
//!
//! Within a shard, dispatch is driven by whichever ticket is blocked in
//! [`Ticket::wait`]: one waiter at a time becomes that shard's
//! *dispatcher*, pops the oldest group and executes it for everyone;
//! the rest park until their result lands or the dispatcher role frees
//! up. Serializing dispatch **per shard** is what makes coalescing
//! emerge under load with no timing windows (classic group commit):
//! while one group runs, a burst of equivalent arrivals accumulates
//! into a single next group in the same shard. A burst of N equivalent
//! concurrent requests against a cold cache thus performs exactly one
//! filter build, provable from counters:
//! `Σ filter_cache_hits + Σ coalesced_requests == N − 1`
//! over the N responses, under **every** interleaving (each request
//! either builds, hits the shared cache, or rides the group pin).
//!
//! **Across** shards nothing serializes: groups with distinct keys that
//! hash to distinct shards dispatch concurrently, each dispatcher
//! leasing its own scratch/pool from the service
//! ([`Planner::peak_concurrent_dispatchers`] is the proof counter).
//! With one shard the planner reproduces the pre-sharding fully
//! serialized dispatch exactly — same ordering, same coalescing, same
//! counters.
//!
//! ## Fairness and ordering guarantees
//!
//! * **Within a shard** groups dispatch in creation order (FIFO; each
//!   group carries a monotone enqueue sequence number, and a
//!   burst-split remainder re-enters the queue *behind* every group
//!   already waiting). A hot key therefore cannot indefinitely delay a
//!   cold key in its shard:
//!   [`AdmissionPolicy::max_dispatch_burst`](crate::AdmissionPolicy)
//!   bounds how many members of one group a single dispatcher turn may
//!   execute before the remainder is re-queued as a fresh group behind
//!   the cold one. The cold group's extra wait is bounded by one burst,
//!   not by the hot group's full backlog. Coalescing survives the
//!   split: re-queued members score filter-cache hits, so the burst
//!   identity above is unchanged.
//! * **Across shards** there is no ordering relation at all — that is
//!   the point. Admission bounds (`max_queue_depth`, eviction scans)
//!   are per shard, so one flooded lane sheds its own traffic and
//!   leaves the others untouched; `max_total_queue_depth` optionally
//!   caps the sum.
//!
//! ## Deadlines and cancellation
//!
//! A member's `Options::timeout` is measured from **enqueue**: time
//! spent queued behind other groups counts against its budget, and a
//! member whose budget is exhausted when its turn comes is answered
//! with a timed-out [`Outcome::Inconclusive`] (its `elapsed` reporting
//! the queue wait) without running — and without disturbing its
//! group-mates. Dropping a [`Ticket`] before [`Ticket::wait`] cancels
//! the request: a still-queued member is unlinked from its group on the
//! spot, a member already being dispatched has its result discarded at
//! delivery (and the dispatcher's cancel probe aborts any dedup wait it
//! was blocked in on that member's behalf) — either way no queue slot,
//! result slot or cancellation mark survives the ticket.
//!
//! ## Admission and load shedding
//!
//! Before a request takes a queue slot it passes the service's
//! [`AdmissionPolicy`](crate::AdmissionPolicy): a deadline-hopeless check (estimated queue wait
//! — the shard's pending groups × its dispatch-latency EWMA — already
//! exceeds the request's budget), the optional service-wide
//! `max_total_queue_depth` cap, the per-shard queue-depth bound, and
//! the per-group size bound. A per-shard or per-group bound violation
//! first tries to **evict** a strictly lower-[`Priority`] queued member
//! *of the same shard* (newest arrival among the lowest priority —
//! [`Planner::submit_with`] sets the priority, plain
//! [`Planner::submit`] is `Normal`); if none exists the incoming
//! request itself is shed. The global cap always sheds the incoming
//! request — lanes never reach into each other's queues. Shed requests
//! resolve per [`ShedMode`]: a deterministic
//! [`ServiceError::Overloaded`] or a fast timed-out `Inconclusive`.
//! The full lifecycle/state diagram lives in the crate docs
//! ([`crate`], "Admission, priority and load shedding").

use crate::admission::{Priority, ShedMode, ShedReason};
use crate::cache::FilterKey;
use crate::{NetEmbedService, QueryRequest, QueryResponse, ServiceError};
use cexpr::Expr;
use netembed::{FilterMatrix, Options, Outcome, Problem, SearchStats};
use netgraph::Network;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A request handed to the planner queue. Identical in shape to a
/// plain [`QueryRequest`] — the planner differs in *how* it executes
/// (grouped, coalesced), not in what it accepts.
pub type PlannedRequest = QueryRequest;

/// One enqueued request awaiting dispatch.
struct Member {
    id: u64,
    options: Options,
    enqueued: Instant,
    /// Consulted only under overload: eviction targets strictly
    /// lower-priority members (newest first).
    priority: Priority,
}

/// Pending requests sharing one grouping key, model snapshot and parsed
/// constraint — dispatched together through one prepared pipeline.
/// The query and expr are `Arc`ed so a burst-split remainder re-queues
/// without re-cloning a possibly large network or re-parsing.
struct PendingGroup {
    key: FilterKey,
    /// Model snapshot captured when the group was created; every member
    /// runs against exactly this version (see module docs).
    model: Arc<Network>,
    query: Arc<Network>,
    /// Parsed + type-linted once per group, at creation.
    expr: Arc<Expr>,
    /// Planner-wide monotone creation sequence: the FIFO tie-breaker
    /// (burst-split remainders get a fresh, higher sequence, which is
    /// what puts them behind already-waiting cold groups).
    seq: u64,
    members: Vec<Member>,
}

/// One dispatch lane's mutable state — the old whole-planner state,
/// now instantiated once per shard.
#[derive(Default)]
struct ShardState {
    /// Open groups in creation (and therefore dispatch) order.
    groups: VecDeque<PendingGroup>,
    /// Delivered results awaiting pickup by their tickets.
    results: HashMap<u64, Result<QueryResponse, ServiceError>>,
    /// Cancelled ids whose member is currently being dispatched (a
    /// still-queued cancel unlinks the member directly instead).
    cancelled: HashSet<u64>,
    /// True while some waiter is executing one of this shard's groups;
    /// dispatch is serialized *per shard* — that is what makes arrivals
    /// coalesce (module docs).
    dispatching: bool,
}

/// One dispatch shard: its state plus its own condvar, so waiters and
/// dispatchers of different lanes never wake each other.
struct Shard {
    state: Mutex<ShardState>,
    /// One condvar per shard for everything: result delivery and
    /// dispatcher-role handoff both go through `notify_all` (waiters
    /// re-check their own predicate under the shard lock, so wakeups
    /// are never lost).
    wake: Condvar,
}

/// The coalescing, sharded cross-request queue. Create one per service
/// with [`NetEmbedService::planner`]; share it by reference among
/// client threads ([`Planner::submit`]/[`Planner::run`] take `&self`).
pub struct Planner<'svc> {
    svc: &'svc NetEmbedService,
    shards: Box<[Shard]>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    groups_dispatched: AtomicU64,
    coalesced_total: AtomicU64,
    /// Dispatchers currently executing a group (across all shards) and
    /// the high-water mark — the observable proof that distinct-key
    /// groups really are in flight simultaneously.
    dispatchers_in_flight: AtomicUsize,
    dispatchers_peak: AtomicUsize,
}

impl NetEmbedService {
    /// A coalescing request queue over this service (see
    /// [`Planner`]), with [`NetEmbedService::planner_shards`] dispatch
    /// shards. Cheap; independent planners don't share queues, but they
    /// do share the service's registry, filter cache (with its
    /// in-flight build dedup), per-shard overload ledgers and scratch
    /// pool.
    pub fn planner(&self) -> Planner<'_> {
        let shards = (0..self.planner_shards())
            .map(|_| Shard {
                state: Mutex::new(ShardState::default()),
                wake: Condvar::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Planner {
            svc: self,
            shards,
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            groups_dispatched: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
            dispatchers_in_flight: AtomicUsize::new(0),
            dispatchers_peak: AtomicUsize::new(0),
        }
    }
}

/// Route a grouping key to its dispatch shard. `DefaultHasher` with the
/// default key is deterministic within one process, which is all the
/// planner needs: the same key always lands in the same shard, so the
/// coalescing and ledger invariants are per-lane facts.
fn shard_index_for(key: &FilterKey, shards: usize) -> usize {
    if shards == 1 {
        return 0;
    }
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Human-readable form of a caught panic payload (the `&str`/`String`
/// cases `panic!` actually produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Tracks one dispatcher turn: maintains the in-flight/peak counters
/// and resets the owning shard's `dispatching` flag (waking its queue)
/// even if group execution unwinds, so a dispatcher role is never
/// wedged. Per-member panics never reach the unwind path — `execute`
/// catches them and delivers [`ServiceError::Internal`] to the affected
/// member, so group-mates always receive their results.
struct DispatchGuard<'a, 'svc> {
    planner: &'a Planner<'svc>,
    shard: usize,
}

impl<'a, 'svc> DispatchGuard<'a, 'svc> {
    fn enter(planner: &'a Planner<'svc>, shard: usize) -> Self {
        let now = planner
            .dispatchers_in_flight
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        planner.dispatchers_peak.fetch_max(now, Ordering::Relaxed);
        DispatchGuard { planner, shard }
    }
}

impl Drop for DispatchGuard<'_, '_> {
    fn drop(&mut self) {
        self.planner
            .dispatchers_in_flight
            .fetch_sub(1, Ordering::Relaxed);
        let shard = &self.planner.shards[self.shard];
        let mut st = lock_state(&shard.state);
        st.dispatching = false;
        drop(st);
        shard.wake.notify_all();
    }
}

/// The planner's bookkeeping runs outside any unwind-prone code, so a
/// poisoned lock can only mean a panic *between* two bookkeeping steps
/// — continuing with the inner state is sound (same argument as the
/// worker pool's lock helper).
fn lock_state(m: &Mutex<ShardState>) -> std::sync::MutexGuard<'_, ShardState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Outcome of one admission attempt (see [`Planner::admit`]).
enum Admit {
    /// Queued; the id's ticket waits normally.
    Admitted(u64),
    /// Shed, but the submitter still gets a ticket — its result (a
    /// timed-out `Inconclusive`, or the victim's per-mode resolution)
    /// is already parked under this id.
    ShedResolved(u64),
    /// Shed under [`ShedMode::Reject`]: the submitter gets the error,
    /// no ticket exists.
    ShedRejected(ShedReason),
    /// Fast path only: no open group for the key — parse the
    /// constraint and retry with the group-creation ingredients.
    NoOpenGroup,
}

/// The canonical shed resolution: a timed-out `Inconclusive` whose
/// `elapsed` reports however long the request actually sat in the
/// queue (zero when shed at submit).
fn shed_response(queued: Duration) -> QueryResponse {
    QueryResponse {
        outcome: Outcome::Inconclusive,
        stats: SearchStats {
            timed_out: true,
            elapsed: queued,
            ..SearchStats::default()
        },
        staleness: None,
    }
}

/// Eviction preference among two candidates: lowest [`Priority`]
/// first, newest arrival breaking ties — shedding hurts the least
/// important, least-invested work.
fn victim_order(a: &Member, b: &Member) -> std::cmp::Ordering {
    a.priority
        .cmp(&b.priority)
        .then(b.enqueued.cmp(&a.enqueued))
}

/// Position of the eviction victim among `members`: the best
/// [`victim_order`] candidate *strictly below* the incoming priority
/// (equal priority is never displaced — admission must not let two
/// equal requests evict each other back and forth).
fn victim_pos(members: &[Member], incoming: Priority) -> Option<usize> {
    members
        .iter()
        .enumerate()
        .filter(|(_, m)| m.priority < incoming)
        .min_by(|(_, a), (_, b)| victim_order(a, b))
        .map(|(i, _)| i)
}

impl<'svc> Planner<'svc> {
    /// The service this planner dispatches into.
    pub fn service(&self) -> &'svc NetEmbedService {
        self.svc
    }

    /// Number of dispatch shards (fixed at planner creation from
    /// [`NetEmbedService::planner_shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The dispatch shard this request's grouping key routes to — the
    /// same shard every equivalent request lands in. Fails like
    /// [`Planner::submit`] on an unknown host. Exposed so stress
    /// harnesses and operators can reason about lane placement.
    pub fn shard_for(&self, request: &PlannedRequest) -> Result<usize, ServiceError> {
        let (_, epoch) = self
            .svc
            .registry()
            .get(&request.host)
            .ok_or_else(|| ServiceError::UnknownHost(request.host.clone()))?;
        let key = FilterKey {
            host: request.host.clone(),
            epoch,
            query_hash: crate::cache::network_fingerprint(&request.query),
            constraint: request.constraint.clone(),
        };
        Ok(shard_index_for(&key, self.shards.len()))
    }

    /// Dispatchers executing a group right now, across all shards.
    pub fn dispatchers_in_flight(&self) -> usize {
        self.dispatchers_in_flight.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrent dispatchers over this planner's
    /// lifetime — `>= 2` is the counter evidence that distinct-key
    /// groups really dispatched simultaneously.
    pub fn peak_concurrent_dispatchers(&self) -> usize {
        self.dispatchers_peak.load(Ordering::Relaxed)
    }

    /// Enqueue a request at [`Priority::Normal`]; returns a [`Ticket`]
    /// to wait on. Fails fast — before taking a queue slot — on an
    /// unknown host and (for group-creating requests) on a constraint
    /// that doesn't parse or type-lint; a request joining an existing
    /// group inherits that group's already-validated constraint, which
    /// is textually identical by the grouping key. Under an
    /// [`AdmissionPolicy`](crate::AdmissionPolicy) with bounds, the request may instead be shed
    /// (module docs): [`ShedMode::Reject`] surfaces
    /// [`ServiceError::Overloaded`] here; a degraded or
    /// deadline-hopeless request still gets a ticket, pre-resolved to a
    /// timed-out `Inconclusive`.
    pub fn submit(&self, request: &PlannedRequest) -> Result<Ticket<'_, 'svc>, ServiceError> {
        self.submit_with(request, Priority::Normal)
    }

    /// [`Planner::submit`] with an explicit [`Priority`]. Priority only
    /// matters under overload: when an admission bound is hit, a
    /// strictly lower-priority queued request (newest arrival first) of
    /// the same shard is evicted to make room; equal or higher
    /// priorities are never displaced. Submit control-plane work
    /// (reservation commits, monitor re-checks) at [`Priority::High`]
    /// and speculative probes at [`Priority::Low`].
    pub fn submit_with(
        &self,
        request: &PlannedRequest,
        priority: Priority,
    ) -> Result<Ticket<'_, 'svc>, ServiceError> {
        let (model, epoch) = self
            .svc
            .registry()
            .get(&request.host)
            .ok_or_else(|| ServiceError::UnknownHost(request.host.clone()))?;
        let key = FilterKey {
            host: request.host.clone(),
            epoch,
            query_hash: crate::cache::network_fingerprint(&request.query),
            constraint: request.constraint.clone(),
        };
        let shard = shard_index_for(&key, self.shards.len());
        let enqueued = Instant::now();
        // Fast path: admit into an existing open group. Only cheap work
        // under the shard lock.
        {
            let mut st = lock_state(&self.shards[shard].state);
            match self.admit(shard, &mut st, &key, request, priority, enqueued, None) {
                Admit::NoOpenGroup => {}
                outcome => {
                    drop(st);
                    return self.resolve_admit(shard, outcome);
                }
            }
        }
        // Group creation: parse/lint the constraint and clone the query
        // network with the lock *released* (both can be arbitrarily
        // large), then re-check — a racing creator may have opened the
        // group in the meantime, in which case this request simply
        // joins it and the spare parse is discarded. Either way exactly
        // one open group per key exists.
        let expr = Arc::new(crate::parse_and_lint(&request.constraint)?);
        let query = Arc::new(request.query.clone());
        let mut st = lock_state(&self.shards[shard].state);
        let outcome = self.admit(
            shard,
            &mut st,
            &key,
            request,
            priority,
            enqueued,
            Some((model, query, expr)),
        );
        drop(st);
        self.resolve_admit(shard, outcome)
    }

    /// Turn an [`Admit`] outcome into the caller-facing result, waking
    /// the shard when state changed (admission, or an eviction that
    /// parked a result some blocked waiter must pick up).
    fn resolve_admit(
        &self,
        shard: usize,
        outcome: Admit,
    ) -> Result<Ticket<'_, 'svc>, ServiceError> {
        match outcome {
            Admit::Admitted(id) | Admit::ShedResolved(id) => {
                self.shards[shard].wake.notify_all();
                Ok(Ticket {
                    planner: self,
                    shard,
                    id,
                    finished: false,
                })
            }
            Admit::ShedRejected(reason) => {
                self.shards[shard].wake.notify_all();
                Err(ServiceError::Overloaded(reason))
            }
            Admit::NoOpenGroup => unreachable!("resolved before group creation"),
        }
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Admission decision for one request, under its shard's lock. With
    /// `create: None` (the fast path) the request can only join an
    /// existing open group — [`Admit::NoOpenGroup`] sends the caller
    /// off to parse the constraint and retry with the group-creation
    /// ingredients. Counter discipline: every path out of this function
    /// except `NoOpenGroup` and admission-*check*-free errors records
    /// `submitted` exactly once **on this shard's ledger**, paired with
    /// either `admitted` or a shed counter — that is the
    /// `Σaccepted + Σshed == Σsubmitted` identity at its source, per
    /// shard and (by summation) globally.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        shard: usize,
        st: &mut ShardState,
        key: &FilterKey,
        request: &PlannedRequest,
        priority: Priority,
        enqueued: Instant,
        create: Option<(Arc<Network>, Arc<Network>, Arc<Expr>)>,
    ) -> Admit {
        let group_idx = st.groups.iter().position(|g| g.key == *key);
        if group_idx.is_none() && create.is_none() {
            return Admit::NoOpenGroup;
        }
        // Staleness gate: while the model feed is degraded past the
        // service's [`StalenessPolicy`], nothing new enters the queue —
        // admitting work against a model known to be behind its feed
        // just manufactures wrong-epoch answers. Shedding through
        // `shed_incoming` keeps the admission ledger exact.
        //
        // [`StalenessPolicy`]: crate::admission::StalenessPolicy
        if self.svc.stale_shed() {
            return self.shed_incoming(shard, st, ShedReason::StaleModel);
        }
        let policy = self.svc.config().admission;
        let overload = self.svc.overload_shard(shard);
        // Deadline hygiene: if the estimated queue wait (this shard's
        // EWMA of group dispatch times × groups ahead of us in the
        // shard) already exceeds the request's whole budget, it would
        // die in the queue — answer it now. Regardless of shed mode
        // this resolves as a timed-out `Inconclusive` (it *is* a
        // timeout, just predicted instead of waited out). A fresh shard
        // has no EWMA evidence and never sheds here.
        if let Some(budget) = request.options.timeout {
            let est = overload.estimated_queue_wait(st.groups.len());
            if !est.is_zero() && est > budget {
                overload.record_submitted();
                overload.record_shed(ShedReason::DeadlineHopeless);
                let id = self.alloc_id();
                st.results.insert(id, Ok(shed_response(Duration::ZERO)));
                return Admit::ShedResolved(id);
            }
        }
        // Service-wide cap across all shards. Always sheds the incoming
        // request: cross-shard eviction would serialize the lanes on
        // each other's locks, defeating the sharding.
        if policy.max_total_queue_depth != usize::MAX
            && self.svc.total_queue_depth() >= policy.max_total_queue_depth
        {
            return self.shed_incoming(shard, st, ShedReason::QueueFull);
        }
        // Group-size bound (join paths only): evict a lower-priority
        // member of *this* group, or shed the incoming request.
        if let Some(idx) = group_idx {
            if st.groups[idx].members.len() >= policy.max_group_size {
                match victim_pos(&st.groups[idx].members, priority) {
                    Some(pos) => {
                        let victim = st.groups[idx].members.remove(pos);
                        self.shed_victim(shard, st, victim, ShedReason::GroupFull);
                    }
                    None => return self.shed_incoming(shard, st, ShedReason::GroupFull),
                }
            }
        }
        // Per-shard queue-depth bound: evict the lowest-priority newest
        // queued member anywhere in this shard, or shed the incoming
        // request.
        let depth: usize = st.groups.iter().map(|g| g.members.len()).sum();
        if depth >= policy.max_queue_depth {
            let victim = st
                .groups
                .iter()
                .enumerate()
                .flat_map(|(gi, g)| {
                    victim_pos(&g.members, priority).map(|pos| (gi, pos, &g.members[pos]))
                })
                .min_by(|(_, _, a), (_, _, b)| victim_order(a, b))
                .map(|(gi, pos, _)| (gi, pos));
            match victim {
                Some((gi, pos)) => {
                    let victim = st.groups[gi].members.remove(pos);
                    self.shed_victim(shard, st, victim, ShedReason::QueueFull);
                }
                None => return self.shed_incoming(shard, st, ShedReason::QueueFull),
            }
        }
        overload.record_submitted();
        overload.record_admitted();
        let id = self.alloc_id();
        let member = Member {
            id,
            options: request.options.clone(),
            enqueued,
            priority,
        };
        match group_idx {
            Some(idx) => st.groups[idx].members.push(member),
            None => {
                let (model, query, expr) = create.expect("checked at entry");
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                st.groups.push_back(PendingGroup {
                    key: key.clone(),
                    model,
                    query,
                    expr,
                    seq,
                    members: vec![member],
                });
            }
        }
        Admit::Admitted(id)
    }

    /// Shed the incoming (not-yet-queued) request: count it on its
    /// shard's ledger and resolve it per the shed mode — an error for
    /// the submitter, or a parked pre-resolved ticket.
    fn shed_incoming(&self, shard: usize, st: &mut ShardState, reason: ShedReason) -> Admit {
        let overload = self.svc.overload_shard(shard);
        overload.record_submitted();
        overload.record_shed(reason);
        match self.svc.config().admission.shed {
            ShedMode::Reject => Admit::ShedRejected(reason),
            ShedMode::DegradeInconclusive => {
                let id = self.alloc_id();
                st.results.insert(id, Ok(shed_response(Duration::ZERO)));
                Admit::ShedResolved(id)
            }
        }
    }

    /// Park the shed resolution for an evicted (already-admitted)
    /// queued member: its provisional `accepted` credit moves to the
    /// shed column and its queue slot frees ([`record_evicted`]) — on
    /// its own shard's ledger; its blocked ticket picks the parked
    /// result up on the next wake.
    ///
    /// [`record_evicted`]: crate::admission::OverloadStats::record_evicted
    fn shed_victim(&self, shard: usize, st: &mut ShardState, victim: Member, reason: ShedReason) {
        self.svc.overload_shard(shard).record_evicted(reason);
        let response = match self.svc.config().admission.shed {
            ShedMode::Reject => Err(ServiceError::Overloaded(reason)),
            ShedMode::DegradeInconclusive => Ok(shed_response(victim.enqueued.elapsed())),
        };
        st.results.insert(victim.id, response);
    }

    /// Submit and wait: the blocking convenience for client threads.
    pub fn run(&self, request: &PlannedRequest) -> Result<QueryResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// [`Planner::run`] with an explicit [`Priority`].
    pub fn run_with(
        &self,
        request: &PlannedRequest,
        priority: Priority,
    ) -> Result<QueryResponse, ServiceError> {
        self.submit_with(request, priority)?.wait()
    }

    /// Groups that reached dispatch with at least one live member
    /// (across all shards; a burst-split remainder counts as its own
    /// group when its turn comes).
    pub fn groups_dispatched(&self) -> u64 {
        self.groups_dispatched.load(Ordering::Relaxed)
    }

    /// Requests that rode a group-mate's pinned filter instead of
    /// touching the shared cache (the planner-level sum of the
    /// per-response [`SearchStats::coalesced_requests`] counters).
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced_total.load(Ordering::Relaxed)
    }

    /// Members currently enqueued (across all shards and open groups).
    pub fn pending_requests(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_state(&s.state)
                    .groups
                    .iter()
                    .map(|g| g.members.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Open groups awaiting dispatch, across all shards (cancellation
    /// can leave a group empty; it is skipped, cheaply, when popped).
    pub fn pending_groups(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_state(&s.state).groups.len())
            .sum()
    }

    /// Results delivered but not yet picked up by their tickets.
    /// Settles to zero once every live ticket has waited — cancelled
    /// tickets' results are discarded at delivery, not parked.
    pub fn undelivered_results(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_state(&s.state).results.len())
            .sum()
    }

    /// Outstanding cancellation marks across all shards (test
    /// instrumentation: must settle to zero — no mark survives its
    /// ticket).
    #[cfg(test)]
    fn cancel_marks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_state(&s.state).cancelled.len())
            .sum()
    }

    /// True if `id` was cancelled while its group was being dispatched;
    /// consumes the mark.
    fn take_cancelled(&self, shard: usize, id: u64) -> bool {
        lock_state(&self.shards[shard].state).cancelled.remove(&id)
    }

    /// Non-consuming peek at the cancel mark — the dispatcher's cancel
    /// probe polls this from inside dedup waits; `deliver` still
    /// consumes the mark afterwards.
    fn is_cancelled(&self, shard: usize, id: u64) -> bool {
        lock_state(&self.shards[shard].state)
            .cancelled
            .contains(&id)
    }

    fn deliver(&self, shard: usize, id: u64, response: Result<QueryResponse, ServiceError>) {
        let mut st = lock_state(&self.shards[shard].state);
        if st.cancelled.remove(&id) {
            // The waiter is gone: discard instead of parking a result
            // nobody will claim. No gauge release — the cancelling drop
            // already released this member's slot when it set the mark.
            return;
        }
        // The admitted member resolves here: its queue-depth slot
        // frees. (Pre-resolved shed tickets never pass through deliver
        // — they are parked directly at admission.)
        self.svc.overload_shard(shard).release_slot();
        st.results.insert(id, response);
        drop(st);
        self.shards[shard].wake.notify_all();
    }

    /// Execute one group end to end: compile once, lease one scratch,
    /// run every live member against the group's pinned filter, deliver
    /// per-member results. Runs on the dispatching waiter's thread with
    /// the shard lock *released* (only `deliver`/`take_cancelled` touch
    /// it, briefly) — which is exactly what lets other shards' groups
    /// run at the same time on their own waiters' threads.
    fn execute(&self, shard: usize, group: PendingGroup) {
        let PendingGroup {
            key,
            model,
            query,
            expr,
            seq: _,
            members,
        } = group;
        if members.is_empty() {
            return; // fully-cancelled group: nothing to do
        }
        self.groups_dispatched.fetch_add(1, Ordering::Relaxed);
        // Whole-group wall time feeds this shard's EWMA, which powers
        // its deadline-hopeless admission (queue wait ≈ groups × EWMA).
        let dispatch_started = Instant::now();
        // One compiled problem serves every member's search *and* the
        // re-verification of every mapping handed back.
        let problem = match Problem::from_parsed(&query, &model, &expr) {
            Ok(p) => p,
            Err(e) => {
                // Group-level failure: every member gets the same
                // (cloned) error — isolated failure semantics only
                // apply to per-member stages.
                for member in members {
                    self.deliver(shard, member.id, Err(ServiceError::Problem(e.clone())));
                }
                return;
            }
        };
        let mut scratch = self.svc.checkout_scratch();
        // Epoch repair: a superseded-epoch cached filter is re-keyed
        // across a clean window, patched in place across a subtractive
        // one, or left to the miss below to rebuild (same
        // classification as the prepared path); the cache's
        // `patches`/`promotions` counters carry the evidence into
        // telemetry.
        self.svc.repair_filter(&key, &problem);
        // Stamped once per group: every member dispatches against the
        // same epoch, so they share one staleness verdict.
        let staleness = self.svc.current_staleness(key.epoch);
        // The group pin: the first member to obtain a filter (hit or
        // build) fixes the exact `Arc` every later member reuses —
        // same eviction immunity as a `PreparedQuery` batch.
        let mut pinned: Option<Arc<FilterMatrix>> = None;
        for member in &members {
            if self.take_cancelled(shard, member.id) {
                continue;
            }
            let queued = member.enqueued.elapsed();
            self.svc.overload_shard(shard).queue_wait.record(queued);
            let run_options = match member.options.timeout {
                Some(budget) => {
                    let remaining = budget.saturating_sub(queued);
                    if remaining.is_zero() {
                        // Deadline died in the queue: a timed-out
                        // member, not a poisoned group.
                        self.deliver(
                            shard,
                            member.id,
                            Ok(QueryResponse {
                                outcome: Outcome::Inconclusive,
                                stats: SearchStats {
                                    timed_out: true,
                                    elapsed: queued,
                                    ..SearchStats::default()
                                },
                                staleness: None,
                            }),
                        );
                        continue;
                    }
                    Options {
                        timeout: Some(remaining),
                        ..member.options.clone()
                    }
                }
                None => member.options.clone(),
            };
            let had_pin = pinned.is_some();
            let run_started = Instant::now();
            // Cancel propagation: if this member's ticket is dropped
            // while the dispatcher works on its behalf, the probe stops
            // any dedup wait — the dispatcher must not block on a
            // build whose result nobody will claim.
            let cancel_probe = || self.is_cancelled(shard, member.id);
            // Panic isolation: a panicking engine run (re-thrown from a
            // pool worker, a violated invariant) becomes *this member's*
            // `ServiceError::Internal` instead of unwinding the
            // dispatcher — group-mates still get their results, and the
            // possibly-inconsistent scratch is replaced, not reused or
            // parked. The service's fault injector panics here too
            // (chaos testing): an injected fault takes exactly the
            // organic panic path.
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if self.svc.faults().should_panic_run() {
                    panic!("injected planner fault");
                }
                crate::prepared::run_cached(
                    crate::prepared::RunCtx::service(self.svc, Some(&cancel_probe)),
                    &key,
                    &problem,
                    &run_options,
                    &mut scratch,
                    &mut pinned,
                )
                .and_then(|mut result| {
                    // Same safety net as every service path: never
                    // return a mapping the compiled problem can't
                    // re-verify.
                    for m in &result.mappings {
                        netembed::check_mapping(&problem, m)
                            .map_err(ServiceError::VerificationFailed)?;
                    }
                    if had_pin && result.stats.filter_cache_hits > 0 {
                        // This member rode the group pin: it never
                        // touched the shared cache, so the credit moves
                        // from `filter_cache_hits` to
                        // `coalesced_requests` — the counter identity
                        // in the module docs depends on the two being
                        // mutually exclusive.
                        result.stats.filter_cache_hits -= 1;
                        result.stats.coalesced_requests += 1;
                        self.coalesced_total.fetch_add(1, Ordering::Relaxed);
                    }
                    result.stats.staleness_lag = staleness.map_or(0, |s| s.lag);
                    Ok(QueryResponse {
                        outcome: result.outcome,
                        stats: result.stats,
                        staleness,
                    })
                })
            }));
            self.svc
                .overload_shard(shard)
                .dispatch
                .record(run_started.elapsed());
            let response = match attempt {
                Ok(Err(ServiceError::Overloaded(reason))) => {
                    // Shed mid-dispatch (the dedup waiter cap): this
                    // member was admitted, so its `accepted` credit
                    // moves to the shed column — the queue-depth slot
                    // itself is released by `deliver` as usual. Then
                    // resolve per mode, like any other shed.
                    self.svc.overload_shard(shard).record_shed_admitted(reason);
                    match self.svc.config().admission.shed {
                        ShedMode::Reject => Err(ServiceError::Overloaded(reason)),
                        ShedMode::DegradeInconclusive => {
                            Ok(shed_response(member.enqueued.elapsed()))
                        }
                    }
                }
                Ok(response) => response,
                Err(payload) => {
                    scratch = netembed::EmbedScratch::new();
                    Err(ServiceError::Internal(panic_message(&*payload)))
                }
            };
            self.deliver(shard, member.id, response);
        }
        self.svc.checkin_scratch(scratch);
        self.svc
            .overload_shard(shard)
            .observe_dispatch(dispatch_started.elapsed());
    }
}

impl std::fmt::Debug for Planner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let per_shard: Vec<(usize, usize, bool)> = self
            .shards
            .iter()
            .map(|s| {
                let st = lock_state(&s.state);
                (
                    st.groups.len(),
                    st.groups.iter().map(|g| g.members.len()).sum::<usize>(),
                    st.dispatching,
                )
            })
            .collect();
        f.debug_struct("Planner")
            .field("shards", &per_shard.len())
            .field(
                "pending_groups",
                &per_shard.iter().map(|(g, _, _)| g).sum::<usize>(),
            )
            .field(
                "pending_requests",
                &per_shard.iter().map(|(_, m, _)| m).sum::<usize>(),
            )
            .field(
                "dispatching_shards",
                &per_shard.iter().filter(|(_, _, d)| *d).count(),
            )
            .field("groups_dispatched", &self.groups_dispatched())
            .field("coalesced_total", &self.coalesced_total())
            .finish()
    }
}

/// A claim on one enqueued request. [`Ticket::wait`] blocks until the
/// result arrives — and, when its shard's dispatcher role is free,
/// *drives* that shard itself (the planner owns no threads; see the
/// module docs). A waiter only ever dispatches groups of its own shard,
/// which is what lets distinct shards' waiters run groups concurrently.
/// Dropping a ticket without waiting cancels the request.
#[must_use = "an unwaited ticket cancels its request when dropped"]
pub struct Ticket<'p, 'svc> {
    planner: &'p Planner<'svc>,
    shard: usize,
    id: u64,
    finished: bool,
}

impl Ticket<'_, '_> {
    /// Block until this request's result is available, dispatching
    /// pending groups of this request's shard (own and others')
    /// whenever no other waiter is.
    pub fn wait(mut self) -> Result<QueryResponse, ServiceError> {
        let shard = &self.planner.shards[self.shard];
        loop {
            let group = {
                let mut st = lock_state(&shard.state);
                loop {
                    if let Some(response) = st.results.remove(&self.id) {
                        self.finished = true;
                        return response;
                    }
                    if !st.dispatching {
                        if let Some(mut group) = st.groups.pop_front() {
                            // The FIFO/fairness contract: everything
                            // still queued was created (or re-queued)
                            // after the group being dispatched.
                            debug_assert!(
                                st.groups.iter().all(|g| g.seq > group.seq),
                                "shard queue must stay in enqueue-sequence order"
                            );
                            // Fairness bound: one dispatcher turn runs
                            // at most `max_dispatch_burst` members; the
                            // remainder re-queues as a fresh group (new
                            // sequence number) *behind* every group
                            // already waiting, so a hot key yields the
                            // lane after each burst.
                            let burst = self.planner.svc.config().admission.max_dispatch_burst;
                            if group.members.len() > burst {
                                let rest = group.members.split_off(burst);
                                let seq = self.planner.next_seq.fetch_add(1, Ordering::Relaxed);
                                st.groups.push_back(PendingGroup {
                                    key: group.key.clone(),
                                    model: Arc::clone(&group.model),
                                    query: Arc::clone(&group.query),
                                    expr: Arc::clone(&group.expr),
                                    seq,
                                    members: rest,
                                });
                            }
                            st.dispatching = true;
                            break group;
                        }
                    }
                    st = shard.wake.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            // Became this shard's dispatcher: execute with the lock
            // released. The guard frees the role (and wakes the shard)
            // even on unwind.
            let guard = DispatchGuard::enter(self.planner, self.shard);
            self.planner.execute(self.shard, group);
            drop(guard);
        }
    }

    /// Cancel explicitly (equivalent to dropping the ticket).
    pub fn cancel(self) {
        // Drop does the work.
    }
}

impl Drop for Ticket<'_, '_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let mut st = lock_state(&self.planner.shards[self.shard].state);
        // Still queued? Unlink the member outright — the queue slot is
        // reclaimed immediately (gauge included, on this shard's
        // ledger) and no mark is needed.
        for group in st.groups.iter_mut() {
            if let Some(pos) = group.members.iter().position(|m| m.id == self.id) {
                group.members.remove(pos);
                self.planner.svc.overload_shard(self.shard).release_slot();
                return;
            }
        }
        // Already resolved? A parked result means the gauge slot was
        // released when it parked (by `deliver`, or never taken at all
        // for a pre-resolved shed ticket) — discard without touching
        // the gauge.
        if st.results.remove(&self.id).is_some() {
            return;
        }
        // Mid-dispatch: mark the id so the in-flight dispatch discards
        // the result at delivery, and release the gauge slot *now* —
        // the request is resolved (cancelled) from the queue's point of
        // view the moment its waiter disappears. `deliver`/
        // `take_cancelled` consume the mark and skip their own release,
        // so the slot can never be freed twice.
        st.cancelled.insert(self.id);
        self.planner.svc.overload_shard(self.shard).release_slot();
    }
}

impl std::fmt::Debug for Ticket<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("id", &self.id)
            .field("shard", &self.shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintFault, ServiceConfig};
    use netgraph::Direction;
    use std::time::Duration;

    fn triangle_host() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        let c = h.add_node("c");
        for (u, v, d) in [(a, b, 10.0), (b, c, 20.0), (a, c, 30.0)] {
            let e = h.add_edge(u, v);
            h.set_edge_attr(e, "avgDelay", d);
        }
        h
    }

    fn edge_query() -> Network {
        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        q
    }

    fn request(host: &str, constraint: &str) -> PlannedRequest {
        PlannedRequest {
            host: host.into(),
            query: edge_query(),
            constraint: constraint.into(),
            options: Options::default(),
        }
    }

    #[test]
    fn run_round_trip_matches_submit() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let planned = planner.run(&req).unwrap();
        let direct = svc.submit(&req).unwrap();
        assert_eq!(planned.mappings(), direct.mappings());
        assert_eq!(planned.outcome, direct.outcome);
        assert_eq!(planner.groups_dispatched(), 1);
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.undelivered_results(), 0);
    }

    #[test]
    fn shard_routing_is_deterministic_and_pinned_by_config() {
        let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(4));
        svc.registry().register("plab", triangle_host());
        assert_eq!(svc.planner_shards(), 4);
        let planner = svc.planner();
        assert_eq!(planner.shard_count(), 4);
        // Same key ⇒ same shard, every time; the route survives
        // re-submission (it is a pure hash of the grouping key).
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let s1 = planner.shard_for(&req).unwrap();
        assert_eq!(planner.shard_for(&req).unwrap(), s1);
        assert!(s1 < 4);
        // A submitted ticket lands in exactly that shard's queue.
        let t = planner.submit(&req).unwrap();
        assert_eq!(t.shard, s1);
        t.wait().unwrap();
        // Unknown hosts fail like submit.
        assert!(matches!(
            planner.shard_for(&request("nope", "true")),
            Err(ServiceError::UnknownHost(_))
        ));
        // One shard reproduces the serialized planner: everything
        // routes to shard 0.
        let svc1 = NetEmbedService::with_config(ServiceConfig::default().planner_shards(1));
        svc1.registry().register("plab", triangle_host());
        let p1 = svc1.planner();
        assert_eq!(p1.shard_count(), 1);
        assert_eq!(p1.shard_for(&req).unwrap(), 0);
    }

    #[test]
    fn burst_split_requeues_remainder_behind_waiting_groups() {
        // The fairness bound, deterministically: one shard, burst of 2,
        // a hot group of 5 and a cold group of 1. The cold waiter pops
        // the hot group, runs exactly 2 members, re-queues the other 3
        // *behind* the cold group, dispatches the cold group (its own),
        // and returns — leaving the hot remainder still pending.
        use crate::AdmissionPolicy;
        let svc = NetEmbedService::with_config(
            ServiceConfig::default()
                .planner_shards(1)
                .admission(AdmissionPolicy::default().max_dispatch_burst(2)),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let hot = request("plab", "rEdge.avgDelay <= 15.0");
        let cold = request("plab", "true");
        let hot_tickets: Vec<_> = (0..5).map(|_| planner.submit(&hot).unwrap()).collect();
        let cold_ticket = planner.submit(&cold).unwrap();
        assert_eq!(planner.pending_groups(), 2);
        let cold_resp = cold_ticket.wait().unwrap();
        assert_eq!(cold_resp.mappings().len(), 6);
        assert_eq!(
            planner.pending_requests(),
            3,
            "the hot remainder must still be queued when the cold waiter returns"
        );
        assert_eq!(
            planner.undelivered_results(),
            2,
            "exactly one burst of the hot group ran before the cold group"
        );
        // Drain the hot tickets; coalescing survives the splits: one
        // designated build, every other member a hit or a pin ride.
        let responses: Vec<_> = hot_tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let isolated = svc.submit(&hot).unwrap();
        let (mut hits, mut coalesced) = (0u64, 0u64);
        for resp in &responses {
            assert_eq!(resp.mappings(), isolated.mappings());
            hits += resp.stats.filter_cache_hits;
            coalesced += resp.stats.coalesced_requests;
        }
        assert_eq!(hits + coalesced, 4, "burst identity across the splits");
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.undelivered_results(), 0);
        let t = svc.telemetry();
        assert_eq!(t.accepted + t.shed.total(), t.submitted);
        assert_eq!(t.queue_depth, 0);
    }

    #[test]
    fn submit_fails_fast_without_taking_a_slot() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        assert!(matches!(
            planner.submit(&request("nope", "true")),
            Err(ServiceError::UnknownHost(_))
        ));
        assert!(matches!(
            planner.submit(&request("plab", "1 +")),
            Err(ServiceError::BadConstraint(ConstraintFault::Parse(_)))
        ));
        assert!(matches!(
            planner.submit(&request("plab", "\"fast\" == 1")),
            Err(ServiceError::BadConstraint(ConstraintFault::Type(_)))
        ));
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.pending_groups(), 0);
    }

    #[test]
    fn equivalent_pending_requests_share_one_group() {
        // Nothing dispatches until someone waits, so the grouping of a
        // quiet enqueue phase is fully deterministic.
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let t1 = planner.submit(&req).unwrap();
        let t2 = planner.submit(&req).unwrap();
        let other = planner.submit(&request("plab", "true")).unwrap();
        assert_eq!(planner.pending_requests(), 3);
        assert_eq!(planner.pending_groups(), 2, "same key coalesces");
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        let r3 = other.wait().unwrap();
        assert_eq!(r1.mappings(), r2.mappings());
        assert_eq!(r1.mappings().len(), 2);
        assert_eq!(r3.mappings().len(), 6);
        // The second member rode the first one's pin.
        assert_eq!(r1.stats.coalesced_requests + r2.stats.coalesced_requests, 1);
        assert_eq!(planner.groups_dispatched(), 2);
        assert_eq!(planner.coalesced_total(), 1);
    }

    #[test]
    fn epoch_bump_between_enqueue_and_dispatch_splits_the_group() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        // Enqueued against the current epoch's snapshot...
        let before = planner.submit(&req).unwrap();
        // ...then the model changes before anything dispatches.
        svc.registry()
            .update("plab", |net| {
                for e in net.edge_refs().collect::<Vec<_>>() {
                    net.set_edge_attr(e.id, "avgDelay", 100.0);
                }
            })
            .unwrap();
        let after = planner.submit(&req).unwrap();
        assert_eq!(
            planner.pending_groups(),
            2,
            "an epoch bump must split the group"
        );
        // Each member sees exactly the snapshot it enqueued against.
        assert_eq!(before.wait().unwrap().mappings().len(), 2);
        assert_eq!(after.wait().unwrap().mappings().len(), 0);
        assert_eq!(planner.groups_dispatched(), 2);
        // Two distinct epochs ⇒ two designated builds, zero coalescing.
        assert_eq!(svc.cache().misses(), 2);
        assert_eq!(planner.coalesced_total(), 0);
    }

    #[test]
    fn cancelled_waiter_releases_its_queue_slot() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let doomed = planner.submit(&req).unwrap();
        assert_eq!(planner.pending_requests(), 1);
        drop(doomed);
        assert_eq!(
            planner.pending_requests(),
            0,
            "a cancelled queued member must be unlinked immediately"
        );
        // The emptied group is skipped; a fresh request still works and
        // nothing (slot, result, mark) leaks.
        let live = planner.submit(&req).unwrap();
        assert_eq!(live.wait().unwrap().mappings().len(), 2);
        assert_eq!(planner.pending_requests(), 0);
        assert_eq!(planner.undelivered_results(), 0);
        assert_eq!(planner.cancel_marks(), 0);
    }

    #[test]
    fn explicit_cancel_equals_drop() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        planner
            .submit(&request("plab", "rEdge.avgDelay <= 15.0"))
            .unwrap()
            .cancel();
        assert_eq!(planner.pending_requests(), 0);
    }

    #[test]
    fn queue_expired_deadline_times_out_without_poisoning_group_mates() {
        let svc = NetEmbedService::new();
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        // Same grouping key (options are not part of it): one member
        // whose budget is already gone, one unlimited.
        let dead = planner
            .submit(&PlannedRequest {
                options: Options {
                    timeout: Some(Duration::ZERO),
                    ..Options::default()
                },
                ..request("plab", "rEdge.avgDelay <= 15.0")
            })
            .unwrap();
        let live = planner
            .submit(&request("plab", "rEdge.avgDelay <= 15.0"))
            .unwrap();
        assert_eq!(planner.pending_groups(), 1, "one group despite options");
        let live_resp = live.wait().unwrap();
        let dead_resp = dead.wait().unwrap();
        assert!(matches!(dead_resp.outcome, Outcome::Inconclusive));
        assert!(dead_resp.stats.timed_out);
        assert_eq!(
            dead_resp.stats.nodes_visited, 0,
            "an expired member must not have run"
        );
        assert_eq!(live_resp.mappings().len(), 2, "group-mate unharmed");
        assert!(matches!(live_resp.outcome, Outcome::Complete(_)));
    }

    #[test]
    fn queue_full_sheds_deterministically_in_reject_mode() {
        use crate::AdmissionPolicy;
        // Waiter-driven dispatch means nothing runs until someone
        // waits, so "fill the queue, then submit one more" is fully
        // deterministic.
        let svc = NetEmbedService::with_config(
            ServiceConfig::default().admission(AdmissionPolicy::default().max_queue_depth(2)),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let t1 = planner.submit(&req).unwrap();
        let t2 = planner.submit(&req).unwrap();
        let refused = planner.submit(&req);
        assert!(
            matches!(
                refused,
                Err(ServiceError::Overloaded(ShedReason::QueueFull))
            ),
            "equal priority cannot evict: the incoming request is shed"
        );
        // Accepted requests are untouched by the shed.
        assert_eq!(t1.wait().unwrap().mappings().len(), 2);
        assert_eq!(t2.wait().unwrap().mappings().len(), 2);
        let t = svc.telemetry();
        assert_eq!(t.submitted, 3);
        assert_eq!(t.accepted, 2);
        assert_eq!(t.shed.queue_full, 1);
        assert_eq!(t.accepted + t.shed.total(), t.submitted);
        assert_eq!(t.queue_depth, 0, "gauge settles after drain");
    }

    #[test]
    fn total_queue_depth_caps_across_shards() {
        use crate::AdmissionPolicy;
        // Per-shard bounds are generous; the global cap is what bites.
        // Two distinct keys may or may not share a shard — the global
        // cap is shard-agnostic either way.
        let svc = NetEmbedService::with_config(
            ServiceConfig::default()
                .planner_shards(4)
                .admission(AdmissionPolicy::default().max_total_queue_depth(2)),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let a = request("plab", "rEdge.avgDelay <= 15.0");
        let b = request("plab", "true");
        let t1 = planner.submit(&a).unwrap();
        let t2 = planner.submit(&b).unwrap();
        // The service-wide gauge is at the cap: the third submit is
        // shed regardless of which lane it routes to, with no eviction
        // (the global cap never reaches into another lane's queue).
        assert!(matches!(
            planner.submit_with(&a, Priority::High),
            Err(ServiceError::Overloaded(ShedReason::QueueFull))
        ));
        assert_eq!(planner.pending_requests(), 2, "no eviction happened");
        assert_eq!(t1.wait().unwrap().mappings().len(), 2);
        assert_eq!(t2.wait().unwrap().mappings().len(), 6);
        let t = svc.telemetry();
        assert_eq!((t.submitted, t.accepted, t.shed.queue_full), (3, 2, 1));
        assert_eq!(t.accepted + t.shed.total(), t.submitted);
        assert_eq!(t.queue_depth, 0);
    }

    #[test]
    fn degrade_mode_resolves_shed_requests_as_timed_out_inconclusive() {
        use crate::{AdmissionPolicy, ShedMode};
        let svc = NetEmbedService::with_config(
            ServiceConfig::default().admission(
                AdmissionPolicy::default()
                    .max_queue_depth(1)
                    .shed(ShedMode::DegradeInconclusive),
            ),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let kept = planner.submit(&req).unwrap();
        // Degrade mode: the shed submitter still gets a ticket, already
        // resolved to a fast timed-out Inconclusive.
        let shed = planner.submit(&req).unwrap();
        let shed_resp = shed.wait().unwrap();
        assert!(matches!(shed_resp.outcome, Outcome::Inconclusive));
        assert!(shed_resp.stats.timed_out);
        assert_eq!(shed_resp.stats.nodes_visited, 0, "shed work never ran");
        assert_eq!(kept.wait().unwrap().mappings().len(), 2);
        let t = svc.telemetry();
        assert_eq!((t.submitted, t.accepted, t.shed.queue_full), (2, 1, 1));
        assert_eq!(t.queue_depth, 0);
    }

    #[test]
    fn high_priority_evicts_lowest_priority_newest_arrival() {
        use crate::AdmissionPolicy;
        let svc = NetEmbedService::with_config(
            ServiceConfig::default().admission(AdmissionPolicy::default().max_queue_depth(2)),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        let low_old = planner.submit_with(&req, Priority::Low).unwrap();
        let low_new = planner.submit_with(&req, Priority::Low).unwrap();
        // The queue is full; a High arrival displaces the *newest* Low.
        let high = planner.submit_with(&req, Priority::High).unwrap();
        assert!(
            matches!(
                low_new.wait(),
                Err(ServiceError::Overloaded(ShedReason::QueueFull))
            ),
            "the newest low-priority member is the victim"
        );
        assert_eq!(low_old.wait().unwrap().mappings().len(), 2);
        assert_eq!(high.wait().unwrap().mappings().len(), 2);
        let t = svc.telemetry();
        assert_eq!((t.submitted, t.accepted, t.shed.queue_full), (3, 2, 1));
        // A further High submit with an empty queue sails through:
        // priority is consulted only under overload.
        assert_eq!(
            planner
                .run_with(&req, Priority::High)
                .unwrap()
                .mappings()
                .len(),
            2
        );
    }

    #[test]
    fn group_size_bound_sheds_within_the_group_only() {
        use crate::AdmissionPolicy;
        let svc = NetEmbedService::with_config(
            ServiceConfig::default().admission(AdmissionPolicy::default().max_group_size(1)),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let a = request("plab", "rEdge.avgDelay <= 15.0");
        let b = request("plab", "true");
        let a1 = planner.submit(&a).unwrap();
        // A different key opens a different group: no conflict.
        let b1 = planner.submit(&b).unwrap();
        assert_eq!(planner.pending_groups(), 2);
        // Same key at equal priority: the group is full, incoming shed.
        assert!(matches!(
            planner.submit(&a),
            Err(ServiceError::Overloaded(ShedReason::GroupFull))
        ));
        // Higher priority evicts within the group instead.
        let a2 = planner.submit_with(&a, Priority::High).unwrap();
        assert!(matches!(
            a1.wait(),
            Err(ServiceError::Overloaded(ShedReason::GroupFull))
        ));
        assert_eq!(a2.wait().unwrap().mappings().len(), 2);
        assert_eq!(b1.wait().unwrap().mappings().len(), 6, "other group safe");
        let t = svc.telemetry();
        assert_eq!((t.submitted, t.accepted), (4, 2));
        assert_eq!(t.shed.group_full, 2);
        assert_eq!(t.queue_depth, 0);
    }

    #[test]
    fn hopeless_deadline_is_shed_at_enqueue() {
        use crate::AdmissionPolicy;
        let svc = NetEmbedService::with_config(
            ServiceConfig::default().admission(AdmissionPolicy::default()),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");
        // Seed the shard's dispatch-latency EWMA with one real group.
        planner.run(&req).unwrap();
        // A pending group means a nonzero estimated wait...
        let pending = planner.submit(&req).unwrap();
        // ...so a 1 ns budget cannot survive the queue: shed at
        // enqueue as a pre-resolved timed-out Inconclusive (this is a
        // *timeout*, regardless of shed mode).
        let hopeless = planner
            .submit(&PlannedRequest {
                options: Options {
                    timeout: Some(Duration::from_nanos(1)),
                    ..Options::default()
                },
                ..req.clone()
            })
            .unwrap();
        let resp = hopeless.wait().unwrap();
        assert!(matches!(resp.outcome, Outcome::Inconclusive));
        assert!(resp.stats.timed_out);
        assert_eq!(resp.stats.nodes_visited, 0);
        assert_eq!(svc.telemetry().shed.deadline_hopeless, 1);
        assert_eq!(pending.wait().unwrap().mappings().len(), 2);
        let t = svc.telemetry();
        assert_eq!(t.accepted + t.shed.total(), t.submitted);
        // The queue-wait and dispatch histograms saw the real traffic.
        assert!(t.queue_wait.count() >= 2);
        assert!(t.dispatch_latency.count() >= 2);
    }

    #[test]
    fn gauge_settles_for_drops_at_every_lifecycle_stage() {
        // The satellite regression: a ticket dropped at any stage —
        // queued, pre-resolved, evicted, mid-dispatch, delivered —
        // must release its queue-depth slot exactly once. Pinned to one
        // shard: stage 5 needs the two distinct-key groups in one FIFO
        // lane so the mate's wait dispatches the blocked group first.
        use crate::cache::FilterFetch;
        use crate::{AdmissionPolicy, ShedMode};
        let svc = NetEmbedService::with_config(
            ServiceConfig::default().planner_shards(1).admission(
                AdmissionPolicy::default()
                    .max_queue_depth(2)
                    .shed(ShedMode::DegradeInconclusive),
            ),
        );
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let req = request("plab", "rEdge.avgDelay <= 15.0");

        // Stage 1: dropped while queued.
        drop(planner.submit(&req).unwrap());
        assert_eq!(svc.telemetry().queue_depth, 0, "queued drop leaks");

        // Stage 2: dropped after delivery (wait picks one, drop the
        // other after its result parked).
        let t1 = planner.submit(&req).unwrap();
        let t2 = planner.submit(&req).unwrap();
        t1.wait().unwrap();
        // t2's result is parked now (the dispatcher ran the group).
        assert_eq!(planner.undelivered_results(), 1);
        drop(t2);
        assert_eq!(planner.undelivered_results(), 0);
        assert_eq!(svc.telemetry().queue_depth, 0, "delivered drop leaks");

        // Stage 3: pre-resolved shed ticket dropped unwaited.
        let f1 = planner.submit(&req).unwrap();
        let f2 = planner.submit(&req).unwrap();
        let shed = planner.submit(&req).unwrap(); // degrade: pre-resolved
        assert_eq!(svc.telemetry().queue_depth, 2);
        drop(shed);
        assert_eq!(
            svc.telemetry().queue_depth,
            2,
            "shed ticket never held a slot"
        );

        // Stage 4: evicted ticket dropped unwaited.
        let high = planner.submit_with(&req, Priority::High).unwrap();
        // f2 (newest Normal) was evicted; drop it without waiting.
        drop(f2);
        assert_eq!(svc.telemetry().queue_depth, 2);
        f1.wait().unwrap();
        high.wait().unwrap();
        assert_eq!(svc.telemetry().queue_depth, 0);

        // Stage 5: dropped mid-dispatch. Block the dispatcher inside
        // the member's filter fetch by holding the key's build ticket,
        // drop the member's planner ticket, then release the build.
        let (_, epoch) = svc.registry().get("plab").unwrap();
        let key = FilterKey {
            host: "plab".into(),
            epoch,
            query_hash: crate::cache::network_fingerprint(&req.query),
            constraint: "rEdge.avgDelay > 5.0".into(),
        };
        let FilterFetch::MustBuild(build) = svc.cache().fetch_or_build(&key, None) else {
            panic!("fresh key must hand out the build ticket");
        };
        let blocked_req = PlannedRequest {
            constraint: "rEdge.avgDelay > 5.0".into(),
            ..req.clone()
        };
        let victim = planner.submit(&blocked_req).unwrap();
        let mate = planner.submit(&req).unwrap();
        std::thread::scope(|s| {
            // The mate's wait dispatches the blocked group first (FIFO)
            // and parks inside fetch_or_build until the build resolves.
            let waiter = s.spawn(|| mate.wait().unwrap());
            while svc.cache().dedup_waits() == 0 && !planner.is_cancelled(victim.shard, victim.id) {
                if lock_state(&planner.shards[0].state).dispatching {
                    break;
                }
                std::thread::yield_now();
            }
            // Give the dispatcher a moment to actually enter the fetch,
            // then cancel the member it is working for.
            std::thread::sleep(Duration::from_millis(5));
            drop(victim);
            assert_eq!(
                svc.telemetry().queue_depth,
                1,
                "mid-dispatch drop must release its slot immediately"
            );
            build.complete(Arc::new({
                let (model, _) = svc.registry().get("plab").unwrap();
                let q = edge_query();
                let expr = crate::parse_and_lint("rEdge.avgDelay > 5.0").unwrap();
                let problem = Problem::from_parsed(&q, &model, &expr).unwrap();
                let mut dl = netembed::Deadline::unlimited();
                let mut stats = SearchStats::default();
                FilterMatrix::build(&problem, &mut dl, &mut stats).unwrap()
            }));
            waiter.join().unwrap();
        });
        assert_eq!(svc.telemetry().queue_depth, 0, "all slots settle");
        assert_eq!(planner.cancel_marks(), 0);
        assert_eq!(planner.undelivered_results(), 0);
    }

    #[test]
    fn cancelled_ticket_aborts_the_dispatchers_dedup_wait() {
        // Cancellation must propagate *into* the dedup wait chain: the
        // dispatcher blocks in fetch_or_build on a cancelled member's
        // behalf with no timeout — only the cancel probe can free it.
        // Without propagation this test deadlocks. One shard, so the
        // two distinct keys share a FIFO lane and the live waiter is
        // guaranteed to dispatch the blocked group first.
        let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(1));
        svc.registry().register("plab", triangle_host());
        let planner = svc.planner();
        let blocked = request("plab", "rEdge.avgDelay > 5.0");
        let free = request("plab", "rEdge.avgDelay <= 15.0");
        let (_, epoch) = svc.registry().get("plab").unwrap();
        let key = FilterKey {
            host: "plab".into(),
            epoch,
            query_hash: crate::cache::network_fingerprint(&blocked.query),
            constraint: blocked.constraint.clone(),
        };
        use crate::cache::FilterFetch;
        let FilterFetch::MustBuild(build) = svc.cache().fetch_or_build(&key, None) else {
            panic!("fresh key must hand out the build ticket");
        };
        let victim = planner.submit(&blocked).unwrap();
        let live = planner.submit(&free).unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| live.wait().unwrap());
            // Let the dispatcher park inside the victim's fetch, then
            // cancel the victim. The probe fires, the dispatcher moves
            // on to the live member's group, and the waiter completes —
            // while the external build ticket is STILL unresolved.
            std::thread::sleep(Duration::from_millis(10));
            drop(victim);
            let resp = waiter.join().unwrap();
            assert_eq!(resp.mappings().len(), 2);
        });
        drop(build); // abandon; nobody is waiting on it anymore
        assert_eq!(svc.telemetry().queue_depth, 0);
        assert_eq!(planner.undelivered_results(), 0);
    }

    #[test]
    fn group_level_problem_error_reaches_every_member() {
        // A constraint that parses and lints but cannot compile against
        // the model (unknown attribute in strict-compile paths is fine
        // here — use a query bigger than the host instead, which is a
        // guaranteed `ProblemError` for every member).
        let svc = NetEmbedService::new();
        let mut tiny = Network::new(Direction::Undirected);
        tiny.add_node("only");
        svc.registry().register("tiny", tiny);
        let planner = svc.planner();
        let req = PlannedRequest {
            host: "tiny".into(),
            query: edge_query(),
            constraint: "true".into(),
            options: Options::default(),
        };
        let t1 = planner.submit(&req).unwrap();
        let t2 = planner.submit(&req).unwrap();
        assert!(matches!(t1.wait(), Err(ServiceError::Problem(_))));
        assert!(matches!(t2.wait(), Err(ServiceError::Problem(_))));
    }
}

//! Prepared queries: the long-lived request handle of the service API.
//!
//! §III describes applications that query the mapping service
//! *repeatedly* — negotiation loops, scheduler sweeps, periodic
//! re-checks under monitoring churn. A [`PreparedQuery`] front-loads
//! everything that is per-*request* rather than per-*run*:
//!
//! * the constraint is parsed and type-linted **once**, at
//!   [`NetEmbedService::prepare`] (a malformed constraint fails there,
//!   as [`ServiceError::BadConstraint`], never mid-search);
//! * each run binds the parsed expression to the *current* registry
//!   snapshot via [`netembed::Problem::from_parsed`] — one compiled
//!   problem serves both the search and the mapping re-verification;
//! * filter builds are memoized in the service's shared
//!   [`FilterCache`] under `(host name,
//!   model epoch, query fingerprint, constraint)` — repeated runs (or
//!   repeated `submit`s of the same request, which are thin wrappers
//!   over this type) rebuild nothing until the model's epoch moves, and
//!   an epoch bump invalidates exactly this host's entries;
//! * the handle leases a warm [`netembed::EmbedScratch`] — DFS arenas
//!   *and* the persistent parallel worker pool — from the service, and
//!   returns it on drop, so back-to-back prepared runs are
//!   allocation-free and spawn-free
//!   ([`SearchStats::pool_reuse`](netembed::SearchStats) shows it).

use crate::admission::{FaultInjector, ShedMode, ShedReason};
use crate::cache::{FilterCache, FilterFetch, FilterKey, HierarchyCache, HierarchyKey};
use crate::{NetEmbedService, QueryResponse, ServiceError};
use cexpr::Expr;
use netembed::{
    Algorithm, BuildCharge, Deadline, EmbedResult, EmbedScratch, Engine, FilterMatrix, Options,
    Outcome, Problem, SearchStats,
};
use netgraph::Network;
use std::sync::Arc;

/// A compiled, cache-connected `(host, query, constraint)` request.
/// Created by [`NetEmbedService::prepare`]; run any number of times
/// with [`PreparedQuery::run`] / [`PreparedQuery::run_batch`].
pub struct PreparedQuery<'svc> {
    svc: &'svc NetEmbedService,
    host: String,
    query: Network,
    constraint: String,
    query_hash: u128,
    expr: Expr,
    /// Leased from the service at prepare, returned on drop. `Some`
    /// for the whole life of the handle.
    scratch: Option<EmbedScratch>,
}

impl<'svc> PreparedQuery<'svc> {
    pub(crate) fn new(
        svc: &'svc NetEmbedService,
        host: String,
        query: Network,
        constraint: String,
        expr: Expr,
    ) -> Self {
        let query_hash = crate::cache::network_fingerprint(&query);
        let scratch = Some(svc.checkout_scratch());
        PreparedQuery {
            svc,
            host,
            query,
            constraint,
            query_hash,
            expr,
            scratch,
        }
    }

    /// The registry name this query targets.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The query network.
    pub fn query(&self) -> &Network {
        &self.query
    }

    /// The constraint source text.
    pub fn constraint(&self) -> &str {
        &self.constraint
    }

    /// Swap in a new constraint, keeping the query (and its
    /// fingerprint), the scratch lease and the cache connection. This
    /// is the §VI-B relaxation step made cheap: a negotiation loop
    /// re-constrains one handle per level instead of re-preparing —
    /// no query clone, no re-fingerprint, no scratch churn. The new
    /// constraint is parsed and type-linted here, exactly like
    /// [`NetEmbedService::prepare`].
    pub fn reconstrain(&mut self, constraint: &str) -> Result<(), ServiceError> {
        self.expr = crate::parse_and_lint(constraint)?;
        self.constraint = constraint.to_string();
        Ok(())
    }

    /// Run once under `options` against the current model snapshot.
    pub fn run(&mut self, options: &Options) -> Result<QueryResponse, ServiceError> {
        let mut out = self.run_many(std::slice::from_ref(options))?;
        Ok(out.pop().expect("one response per run"))
    }

    /// Run a whole batch against **one** model snapshot: every run sees
    /// the same epoch (a concurrent registry update affects the next
    /// batch, not a run in the middle of this one), so one filter build
    /// — or one cache hit — serves every filter-based run.
    pub fn run_batch(&mut self, runs: &[Options]) -> Result<Vec<QueryResponse>, ServiceError> {
        self.run_many(runs)
    }

    fn run_many(&mut self, runs: &[Options]) -> Result<Vec<QueryResponse>, ServiceError> {
        let (host, epoch) = self
            .svc
            .registry()
            .get(&self.host)
            .ok_or_else(|| ServiceError::UnknownHost(self.host.clone()))?;
        // Staleness gate (crate docs, "Staleness and degradation"): the
        // direct path has no admission queue, so the gate is the whole
        // check — shed per the service's mode, exactly like a planner
        // submit would.
        if self.svc.stale_shed() {
            match self.svc.config().admission.shed {
                ShedMode::Reject => {
                    return Err(ServiceError::Overloaded(ShedReason::StaleModel));
                }
                ShedMode::DegradeInconclusive => {
                    let staleness = self.svc.current_staleness(epoch);
                    return Ok(runs
                        .iter()
                        .map(|_| {
                            let shed = shed_inconclusive();
                            QueryResponse {
                                outcome: shed.outcome,
                                stats: shed.stats,
                                staleness,
                            }
                        })
                        .collect());
                }
            }
        }
        let key = FilterKey {
            host: self.host.clone(),
            epoch,
            query_hash: self.query_hash,
            constraint: self.constraint.clone(),
        };
        let problem = Problem::from_parsed(&self.query, &host, &self.expr)?;
        // Epoch bump since the last cached build? Classify the dirty
        // window before the fetch below can miss: empty → promote the
        // old entry, subtractive → patch it in place, additive or
        // unknown → let the miss rebuild.
        let repair = self.svc.repair_filter(&key, &problem);
        let scratch = self.scratch.as_mut().expect("scratch leased until drop");
        let mut responses = Vec::with_capacity(runs.len());
        // Batch-local pin: once a filter is obtained (hit or build), the
        // rest of the batch reuses this exact `Arc` regardless of what
        // concurrent queries do to the shared cache's LRU — the old
        // `submit_batch` held its filter in a local, and a long batch
        // must keep that eviction immunity.
        let mut pinned: Option<Arc<FilterMatrix>> = None;
        for options in runs {
            let fetched = run_cached(
                RunCtx::service(self.svc, None),
                &key,
                &problem,
                options,
                scratch,
                &mut pinned,
            );
            let result = match fetched {
                // Direct-path dedup shedding resolves per the service's
                // shed mode: degrade to a fast timed-out Inconclusive,
                // or surface the deterministic Overloaded error.
                Err(ServiceError::Overloaded(_))
                    if self.svc.config().admission.shed == ShedMode::DegradeInconclusive =>
                {
                    shed_inconclusive()
                }
                other => other?,
            };
            // Safety net, §III: independently verify every mapping
            // before returning — against the *same* compiled problem
            // the search used (the old submit path compiled it twice).
            for m in &result.mappings {
                netembed::check_mapping(&problem, m).map_err(ServiceError::VerificationFailed)?;
            }
            // Stamp serve-time staleness: the epoch this batch is bound
            // to may be lagging a degraded feed.
            let staleness = self.svc.current_staleness(epoch);
            let mut stats = result.stats;
            stats.staleness_lag = staleness.map_or(0, |s| s.lag);
            responses.push(QueryResponse {
                outcome: result.outcome,
                stats,
                staleness,
            });
        }
        // The repair ran once, before the batch: credit it to the first
        // response so a submit loop can sum `patches`/`patch_rebuilds`
        // across responses, mirroring `filter_cache_hits`.
        if let Some(first) = responses.first_mut() {
            first.stats.patches += u64::from(repair.patched);
            first.stats.patch_rebuilds += u64::from(repair.patch_rebuild);
        }
        Ok(responses)
    }
}

impl Drop for PreparedQuery<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.svc.checkin_scratch(scratch);
        }
    }
}

impl std::fmt::Debug for PreparedQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("host", &self.host)
            .field("constraint", &self.constraint)
            .field("query_nodes", &self.query.node_count())
            .finish()
    }
}

/// Everything [`run_cached`] needs from its host: the filter cache to
/// resolve through, plus the service-only overload hooks — the fault
/// injector and the dispatcher's cancel probe. The standalone
/// [`crate::schedule::Scheduler`] runs `bare`: its private cache, no
/// fault injection, no cancellation.
pub(crate) struct RunCtx<'a> {
    cache: &'a FilterCache,
    /// Coarsened-substrate memo for hierarchical runs; `None` makes a
    /// hierarchical run coarsen per-call (the bare scheduler path).
    hierarchies: Option<&'a HierarchyCache>,
    /// The delta-feed registry, for classifying epoch windows: a
    /// hierarchical run consults it to promote a superseded coarsening
    /// across a provably-clean epoch bump before paying a rebuild.
    /// `None` (the bare scheduler) always rebuilds on an epoch move.
    registry: Option<&'a crate::registry::ModelRegistry>,
    faults: Option<&'a FaultInjector>,
    cancel: Option<&'a dyn Fn() -> bool>,
}

impl<'a> RunCtx<'a> {
    pub(crate) fn service(svc: &'a NetEmbedService, cancel: Option<&'a dyn Fn() -> bool>) -> Self {
        Self {
            cache: svc.cache(),
            hierarchies: Some(svc.hierarchy_cache()),
            registry: Some(svc.registry()),
            faults: Some(svc.faults()),
            cancel,
        }
    }

    pub(crate) fn bare(cache: &'a FilterCache) -> Self {
        Self {
            cache,
            hierarchies: None,
            registry: None,
            faults: None,
            cancel: None,
        }
    }
}

/// One engine run through the service's filter cache: pinned/hit →
/// reuse the memoized matrix (`stats.filter_cache_hits = 1`, zero build
/// evals); miss → resolve through the cache's in-flight dedup table
/// ([`crate::cache::FilterCache::fetch_or_build`]). A *designated
/// builder* builds under this run's budget (parallel builds go through
/// the scratch's persistent pool), charges the build to its own stats
/// and timeout via the shared [`BuildCharge`] contract, and memoizes
/// the matrix unless the deadline truncated it (a truncated filter is a
/// function of the budget, not the key — the ticket is abandoned and
/// the next run rebuilds under its own budget). A run that instead
/// found the same key *already being built* blocks — at most for its
/// own budget — and reuses the winner's matrix, reporting
/// `dedup_waits = 1` alongside the hit; a wait the budget cut short
/// reports a plain timeout, exactly as if the budget had gone into a
/// truncated build.
///
/// `pinned` is the caller's batch-local slot for the same key: it is
/// consulted before the shared cache and populated by the first hit or
/// complete build, so a multi-run caller keeps its filter even if the
/// shared LRU evicts the entry mid-batch. Single-run callers pass a
/// fresh `&mut None`.
///
/// Overload/cancellation hooks: a dedup wait that hits the cache's
/// waiter cap returns [`ServiceError::Overloaded`] (the *caller* maps
/// it per the service's [`ShedMode`] — the planner moves the member's
/// `accepted` credit to the shed column, the direct path degrades or
/// propagates); `cancel` is the planner dispatcher's probe for "the
/// requester dropped its ticket", which aborts dedup waits with a
/// discarded Inconclusive instead of blocking on a build nobody will
/// read. The service's fault injector may force a designated build to
/// abandon (chaos testing): observably identical to a deadline-
/// truncated build, so it exercises the abandon→takeover chain without
/// ever caching a truncated filter.
pub(crate) fn run_cached(
    ctx: RunCtx<'_>,
    key: &FilterKey,
    problem: &Problem<'_>,
    options: &Options,
    scratch: &mut EmbedScratch,
    pinned: &mut Option<Arc<FilterMatrix>>,
) -> Result<EmbedResult, ServiceError> {
    if matches!(options.algorithm, Algorithm::Lns) {
        // LNS keeps no filter state (that is its point, §V-C); it only
        // shares the scratch.
        return Ok(Engine::run_with_scratch(problem, options, scratch)?);
    }
    if let Some(spec) = options.hierarchy {
        // Hierarchical runs bypass the filter cache on purpose: their
        // restricted matrix is a product of this run's refinement, and
        // memoizing it under the flat key would let a later flat run
        // serve (correct but pointlessly narrow) restricted cells — or
        // a hierarchical run hit a full matrix and skip the very
        // pruning it asked for. The expensive shared artifact here is
        // the *coarsening*, which is per-`(host, epoch, spec)` and
        // memoized in the service's `HierarchyCache`; both building and
        // inserting run outside any lock, and a duplicate build race is
        // benign (deterministic construction, last insert wins).
        let (hier, hit) = match ctx.hierarchies {
            Some(hierarchies) => {
                let hkey = HierarchyKey {
                    host: key.host.clone(),
                    epoch: key.epoch,
                    spec,
                };
                // Coarsenings depend only on topology and attributes:
                // an epoch bump whose dirty window is provably empty
                // (a tracked no-op delta) re-keys the superseded
                // coarsening instead of rebuilding it.
                if let Some(registry) = ctx.registry {
                    hierarchies.try_promote(&hkey, |old| {
                        registry
                            .dirty_between(&hkey.host, old, hkey.epoch)
                            .is_some_and(|dirty| dirty.is_empty())
                    });
                }
                hierarchies.fetch_or_build(&hkey, || {
                    netembed::SubstrateHierarchy::build(problem.host, &spec)
                })
            }
            None => (
                Arc::new(netembed::SubstrateHierarchy::build(problem.host, &spec)),
                false,
            ),
        };
        let mut result = Engine::run_hier(problem, &hier, options, scratch)?;
        result.stats.hierarchy_cache_hits = u64::from(hit);
        return Ok(result);
    }
    if let Some(filter) = pinned.as_ref().cloned() {
        let mut result = Engine::run_prebuilt(problem, &filter, options, scratch)?;
        result.stats.filter_cache_hits += 1;
        return Ok(result);
    }
    let mut charge = BuildCharge::begin(scratch.parallel.pool().spawned_total());
    match ctx
        .cache
        .fetch_or_build_watch(key, options.timeout, ctx.cancel)
    {
        FilterFetch::Hit(filter) => {
            *pinned = Some(filter.clone());
            let mut result = Engine::run_prebuilt(problem, &filter, options, scratch)?;
            result.stats.filter_cache_hits += 1;
            Ok(result)
        }
        FilterFetch::Waited(filter) => {
            // Someone else built this key while we blocked: a cache hit
            // delivered late. The wait consumed real wall time on this
            // run's budget (but no CPU), so the search runs on the
            // remainder and the wait is added back to `elapsed`.
            *pinned = Some(filter.clone());
            charge.finish_build(scratch.parallel.pool().spawned_total());
            let run_options = Options {
                timeout: charge.remaining(options.timeout),
                ..options.clone()
            };
            let mut result = Engine::run_prebuilt(problem, &filter, &run_options, scratch)?;
            result.stats.filter_cache_hits += 1;
            result.stats.dedup_waits += 1;
            result.stats.elapsed += charge.spent();
            Ok(result)
        }
        FilterFetch::WaitExpired => {
            // The whole budget went into waiting on a build that did
            // not finish in time — the same observable outcome as a
            // deadline-truncated own build.
            // No `dedup_waits` here: that counter (like the cache's)
            // only marks waits that actually *delivered* a filter — an
            // expired wait saved nothing, exactly as the cache counts
            // it.
            charge.finish_build(scratch.parallel.pool().spawned_total());
            Ok(EmbedResult {
                mappings: Vec::new(),
                outcome: Outcome::Inconclusive,
                stats: SearchStats {
                    timed_out: true,
                    elapsed: charge.spent(),
                    ..SearchStats::default()
                },
            })
        }
        FilterFetch::Overloaded => {
            // The in-flight build's waiter convoy is full. The caller
            // decides what the shed resolves to (planner: telemetry +
            // per-mode delivery; direct path: degrade or propagate).
            Err(ServiceError::Overloaded(ShedReason::DedupWaitersFull))
        }
        FilterFetch::Cancelled => {
            // The requester dropped its ticket while this thread waited
            // on its behalf; the result is discarded at delivery, so a
            // bare Inconclusive is enough.
            Ok(shed_inconclusive())
        }
        FilterFetch::MustBuild(ticket) => {
            // Chaos injection: abandon this build as if its deadline
            // had truncated it — waiters wake and one takes over; the
            // "builder" reports a timeout. Identical to the organic
            // truncation path below, so nothing downstream can tell
            // injected faults from real ones.
            if ctx.faults.is_some_and(|f| f.should_truncate_build()) {
                ticket.abandon();
                charge.finish_build(scratch.parallel.pool().spawned_total());
                let mut result = shed_inconclusive();
                result.stats.elapsed = charge.spent();
                return Ok(result);
            }
            // A takeover builder (its predecessor's build was abandoned
            // mid-wait) has already burned part of its budget blocking:
            // `remaining_now` keeps the deadline honest, and the
            // build-start mark keeps the blocked time out of
            // `cpu_time`.
            charge.mark_build_start();
            let mut deadline = Deadline::new(charge.remaining_now(options.timeout));
            let mut build_stats = SearchStats::default();
            let threads = match options.algorithm {
                Algorithm::ParallelEcf { threads } => threads,
                _ => 1,
            };
            // A `?` here drops the ticket, which abandons the key so a
            // waiter can take over — builders never strand waiters.
            let filter = Arc::new(if threads > 1 {
                FilterMatrix::build_par_pooled(
                    problem,
                    threads,
                    &mut deadline,
                    &mut build_stats,
                    scratch.parallel.pool_mut(),
                )?
            } else {
                FilterMatrix::build(problem, &mut deadline, &mut build_stats)?
            });
            charge.finish_build(scratch.parallel.pool().spawned_total());
            if filter.truncated() {
                ticket.abandon();
            } else {
                ticket.complete(filter.clone());
                *pinned = Some(filter.clone());
            }
            // The builder's search runs on whatever budget the build
            // left over; later cache hitters get their full timeout
            // (they paid nothing).
            let run_options = Options {
                timeout: charge.remaining(options.timeout),
                ..options.clone()
            };
            let mut result = Engine::run_prebuilt(problem, &filter, &run_options, scratch)?;
            charge.charge_build(&mut result.stats, &build_stats);
            charge.settle_pool_reuse(&mut result.stats);
            Ok(result)
        }
    }
}

/// The canonical shed/cancel result: a fast timed-out `Inconclusive`
/// with zero search work — observably the outcome admission predicted
/// (the request's budget would have died waiting anyway).
pub(crate) fn shed_inconclusive() -> EmbedResult {
    EmbedResult {
        mappings: Vec::new(),
        outcome: Outcome::Inconclusive,
        stats: SearchStats {
            timed_out: true,
            ..SearchStats::default()
        },
    }
}

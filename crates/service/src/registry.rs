//! The network-model store (§III component 1), epoch-versioned.
//!
//! The service keeps "an up-to-date copy of the model" per hosting
//! network; a monitoring pipeline (or the [`crate::monitor`] simulator)
//! replaces models as measurements arrive. Readers get an `Arc` snapshot
//! paired with a [`ModelEpoch`], so in-flight queries are never affected
//! by a concurrent update — exactly the semantics a replicated NETEMBED
//! deployment needs — and downstream caches (the
//! [`FilterCache`](crate::cache::FilterCache) behind
//! [`PreparedQuery`](crate::PreparedQuery)) can key derived state by the
//! epoch instead of hashing whole networks.
//!
//! ## Epoch semantics
//!
//! Every mutation — [`ModelRegistry::register`],
//! [`ModelRegistry::update`] (the reservation system's commit hook), a
//! remove-and-re-register — stamps the affected entry with a fresh epoch
//! drawn from one registry-wide monotonic counter. Consequences callers
//! rely on:
//!
//! * epochs are **unique across the whole registry**, so an epoch value
//!   identifies one specific version of one specific host model;
//! * a host's epoch **never repeats** (even across remove/re-register),
//!   so anything memoized under an old epoch is permanently stale, never
//!   wrongly resurrected;
//! * mutating host `A` leaves host `B`'s epoch untouched, so epoch-keyed
//!   caches are invalidated *exactly* for the affected host.

use netgraph::Network;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic version stamp of one registered model. See the module docs
/// for the uniqueness guarantees. The raw value is public so other
/// epoch-keyed caches (e.g. the scheduler's residual-model cache) can
/// mint values in their own namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelEpoch(pub u64);

struct Entry {
    model: Arc<Network>,
    epoch: ModelEpoch,
}

/// Thread-safe named store of hosting-network models.
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Entry>>,
    /// Last epoch handed out. Always minted while holding the write
    /// lock, so per-entry epochs are strictly increasing in swap-in
    /// order (the atomic just avoids a second lock around the counter).
    last_epoch: AtomicU64,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            models: RwLock::new(HashMap::new()),
            last_epoch: AtomicU64::new(0),
        }
    }

    fn next_epoch(&self) -> ModelEpoch {
        ModelEpoch(self.last_epoch.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Register or replace the model for `name`; returns the entry's new
    /// epoch. The epoch is minted *inside* the write lock (as in
    /// [`ModelRegistry::update`]) so a racing mutation of the same name
    /// can never make its visible epoch move backwards.
    pub fn register(&self, name: &str, model: Network) -> ModelEpoch {
        let mut guard = self.models.write();
        let epoch = self.next_epoch();
        guard.insert(
            name.to_string(),
            Entry {
                model: Arc::new(model),
                epoch,
            },
        );
        epoch
    }

    /// Snapshot of the model for `name` plus its current epoch. The
    /// snapshot stays internally consistent under concurrent updates;
    /// the epoch tells the caller *which* version it got (and is the
    /// cache key for anything derived from it).
    pub fn get(&self, name: &str) -> Option<(Arc<Network>, ModelEpoch)> {
        self.models
            .read()
            .get(name)
            .map(|e| (e.model.clone(), e.epoch))
    }

    /// Snapshot of the model for `name` (epoch-less convenience for
    /// callers that don't cache).
    pub fn model(&self, name: &str) -> Option<Arc<Network>> {
        self.models.read().get(name).map(|e| e.model.clone())
    }

    /// Current epoch of `name` without touching the model — the cheap
    /// staleness probe for epoch-keyed caches.
    pub fn epoch(&self, name: &str) -> Option<ModelEpoch> {
        self.models.read().get(name).map(|e| e.epoch)
    }

    /// Remove a model; returns it if present.
    pub fn remove(&self, name: &str) -> Option<Arc<Network>> {
        self.models.write().remove(name).map(|e| e.model)
    }

    /// Apply `update` to a copy of the current model and atomically swap
    /// the result in under a fresh epoch, which is returned. `None` when
    /// `name` is unknown. This is the reservation system's hook (§III
    /// component 3): allocate → adjust → epoch bump (which invalidates
    /// exactly this host's cached filters).
    pub fn update(&self, name: &str, update: impl FnOnce(&mut Network)) -> Option<ModelEpoch> {
        let mut guard = self.models.write();
        let entry = guard.get(name)?;
        let mut copy = (*entry.model).clone();
        update(&mut copy);
        let epoch = self.next_epoch();
        guard.insert(
            name.to_string(),
            Entry {
                model: Arc::new(copy),
                epoch,
            },
        );
        Some(epoch)
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn net(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        for i in 0..n {
            g.add_node(format!("n{i}"));
        }
        g
    }

    #[test]
    fn register_get_remove() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register("a", net(3));
        reg.register("b", net(5));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.model("a").unwrap().node_count(), 3);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.remove("a").unwrap().node_count(), 3);
        assert!(reg.get("a").is_none());
        assert!(reg.epoch("a").is_none());
    }

    #[test]
    fn snapshots_survive_updates() {
        let reg = ModelRegistry::new();
        reg.register("m", net(2));
        let (snapshot, epoch) = reg.get("m").unwrap();
        reg.register("m", net(9));
        // Old snapshot is unaffected; new readers see the update under a
        // newer epoch.
        assert_eq!(snapshot.node_count(), 2);
        let (fresh, fresh_epoch) = reg.get("m").unwrap();
        assert_eq!(fresh.node_count(), 9);
        assert!(fresh_epoch > epoch);
    }

    #[test]
    fn update_in_place_bumps_epoch() {
        let reg = ModelRegistry::new();
        let first = reg.register("m", net(2));
        let updated = reg
            .update("m", |n| {
                n.add_node("extra");
            })
            .unwrap();
        assert!(updated > first);
        assert_eq!(reg.model("m").unwrap().node_count(), 3);
        assert_eq!(reg.epoch("m"), Some(updated));
        assert!(reg.update("missing", |_| {}).is_none());
    }

    #[test]
    fn epochs_are_per_host_and_never_reused() {
        let reg = ModelRegistry::new();
        let a1 = reg.register("a", net(1));
        let b1 = reg.register("b", net(1));
        // Mutating `a` leaves `b`'s epoch untouched.
        let a2 = reg.update("a", |_| {}).unwrap();
        assert_eq!(reg.epoch("b"), Some(b1));
        assert!(a2 > a1);
        // Remove + re-register never resurrects an old epoch.
        reg.remove("a");
        let a3 = reg.register("a", net(1));
        assert!(a3 > a2, "re-registered epoch must be fresh");
        // All epochs seen so far are distinct.
        let mut seen = [a1, b1, a2, a3];
        seen.sort();
        for w in seen.windows(2) {
            assert!(w[0] < w[1], "duplicate epoch");
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::thread;
        let reg = std::sync::Arc::new(ModelRegistry::new());
        reg.register("m", net(1));
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    if t % 2 == 0 {
                        reg.register("m", net((i % 7) + 1));
                    } else {
                        let (snap, _) = reg.get("m").unwrap();
                        assert!(snap.node_count() >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 100 writes happened; the final epoch reflects every one of them.
        assert!(reg.epoch("m").unwrap() >= ModelEpoch(101));
    }

    #[test]
    fn epochs_strictly_increase_under_concurrent_updates() {
        use std::thread;
        let reg = std::sync::Arc::new(ModelRegistry::new());
        reg.register("m", net(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                let mut epochs = Vec::new();
                for _ in 0..25 {
                    epochs.push(reg.update("m", |_| {}).unwrap());
                }
                epochs
            }));
        }
        let mut all: Vec<ModelEpoch> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "concurrent updates produced duplicate epochs");
    }
}

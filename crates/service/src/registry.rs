//! The network-model store (§III component 1), epoch-versioned.
//!
//! The service keeps "an up-to-date copy of the model" per hosting
//! network; a monitoring pipeline (or the [`crate::monitor`] simulator)
//! replaces models as measurements arrive. Readers get an `Arc` snapshot
//! paired with a [`ModelEpoch`], so in-flight queries are never affected
//! by a concurrent update — exactly the semantics a replicated NETEMBED
//! deployment needs — and downstream caches (the
//! [`FilterCache`](crate::cache::FilterCache) behind
//! [`PreparedQuery`](crate::PreparedQuery)) can key derived state by the
//! epoch instead of hashing whole networks.
//!
//! ## Epoch semantics
//!
//! Every mutation — [`ModelRegistry::register`],
//! [`ModelRegistry::update`] (the reservation system's commit hook), a
//! remove-and-re-register — stamps the affected entry with a fresh epoch
//! drawn from one registry-wide monotonic counter. Consequences callers
//! rely on:
//!
//! * epochs are **unique across the whole registry**, so an epoch value
//!   identifies one specific version of one specific host model;
//! * a host's epoch **never repeats** (even across remove/re-register),
//!   so anything memoized under an old epoch is permanently stale, never
//!   wrongly resurrected;
//! * mutating host `A` leaves host `B`'s epoch untouched, so epoch-keyed
//!   caches are invalidated *exactly* for the affected host.
//!
//! ## Dirty-node history
//!
//! Feed-driven mutations ([`ModelRegistry::update_dirty`], used by
//! [`crate::feed::RegistryFeed`]) additionally record *which host nodes*
//! each epoch transition touched. [`ModelRegistry::dirty_between`]
//! composes those per-transition [`DirtySet`]s into the union of
//! everything dirtied between two epochs — the contract the
//! [`FilterCache`](crate::cache::FilterCache)'s epoch-promotion path
//! (and, per the ROADMAP, future in-place `FilterMatrix` patching)
//! builds on. Untracked mutations ([`ModelRegistry::update`],
//! [`ModelRegistry::register`]) deliberately *break* the transition
//! chain: `dirty_between` across them returns `None`, which downstream
//! consumers must treat as "anything may have changed" (full rebuild).

use netgraph::{Network, NodeBitSet, NodeId};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic version stamp of one registered model. See the module docs
/// for the uniqueness guarantees. The raw value is public so other
/// epoch-keyed caches (e.g. the scheduler's residual-model cache) can
/// mint values in their own namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelEpoch(pub u64);

/// The set of host-node ids one (or a composition of) registry
/// mutation(s) touched: mutated nodes plus both endpoints of every
/// mutated edge. Kept as a sorted id set rather than a bitset so it is
/// independent of any particular host's node capacity (a delta may add
/// nodes the current model does not have yet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    ids: BTreeSet<u32>,
}

impl DirtySet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw node indices.
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        DirtySet {
            ids: ids.into_iter().collect(),
        }
    }

    /// Mark one node dirty.
    pub fn insert(&mut self, id: u32) {
        self.ids.insert(id);
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.contains(&id)
    }

    /// Number of dirty nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &DirtySet) {
        self.ids.extend(other.ids.iter().copied());
    }

    /// True when any dirty node is a member of `nodes` (ids beyond the
    /// bitset's capacity cannot be members and are skipped) — the
    /// cache-promotion probe: a filter whose candidate union does not
    /// intersect the accumulated dirty set cannot have lost a cached
    /// candidate.
    pub fn intersects(&self, nodes: &NodeBitSet) -> bool {
        self.ids.iter().any(|&id| nodes.contains(NodeId(id)))
    }

    /// Dirty node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }
}

/// Epoch transitions (with their dirty sets) retained per host. Bounds
/// the memory of a long-lived feed; `dirty_between` over a window older
/// than the retained history returns `None` (full rebuild), which is
/// always safe.
const DIRTY_HISTORY_CAP: usize = 64;

/// One recorded transition: applying a tracked mutation moved the host
/// from epoch `from` to epoch `to`, dirtying `dirty`.
struct Transition {
    from: ModelEpoch,
    to: ModelEpoch,
    dirty: DirtySet,
}

struct Entry {
    model: Arc<Network>,
    epoch: ModelEpoch,
    /// Tracked transitions in application order (`from` strictly
    /// increasing). Cleared on wholesale replacement
    /// ([`ModelRegistry::register`]): a snapshot swap has no per-node
    /// delta, so the chain must break there.
    history: VecDeque<Transition>,
}

/// Thread-safe named store of hosting-network models.
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Entry>>,
    /// Last epoch handed out. Always minted while holding the write
    /// lock, so per-entry epochs are strictly increasing in swap-in
    /// order (the atomic just avoids a second lock around the counter).
    last_epoch: AtomicU64,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            models: RwLock::new(HashMap::new()),
            last_epoch: AtomicU64::new(0),
        }
    }

    fn next_epoch(&self) -> ModelEpoch {
        ModelEpoch(self.last_epoch.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Register or replace the model for `name`; returns the entry's new
    /// epoch. The epoch is minted *inside* the write lock (as in
    /// [`ModelRegistry::update`]) so a racing mutation of the same name
    /// can never make its visible epoch move backwards.
    pub fn register(&self, name: &str, model: Network) -> ModelEpoch {
        let mut guard = self.models.write();
        let epoch = self.next_epoch();
        guard.insert(
            name.to_string(),
            Entry {
                model: Arc::new(model),
                epoch,
                history: VecDeque::new(),
            },
        );
        epoch
    }

    /// Snapshot of the model for `name` plus its current epoch. The
    /// snapshot stays internally consistent under concurrent updates;
    /// the epoch tells the caller *which* version it got (and is the
    /// cache key for anything derived from it).
    pub fn get(&self, name: &str) -> Option<(Arc<Network>, ModelEpoch)> {
        self.models
            .read()
            .get(name)
            .map(|e| (e.model.clone(), e.epoch))
    }

    /// Snapshot of the model for `name` (epoch-less convenience for
    /// callers that don't cache).
    pub fn model(&self, name: &str) -> Option<Arc<Network>> {
        self.models.read().get(name).map(|e| e.model.clone())
    }

    /// Current epoch of `name` without touching the model — the cheap
    /// staleness probe for epoch-keyed caches.
    pub fn epoch(&self, name: &str) -> Option<ModelEpoch> {
        self.models.read().get(name).map(|e| e.epoch)
    }

    /// Remove a model; returns it if present. The host's dirty history
    /// goes with it — a later re-register starts a fresh chain. Note
    /// that epoch-keyed [`FilterCache`](crate::cache::FilterCache)
    /// entries for the host are *not* reachable from here; callers that
    /// own both sides should go through
    /// [`NetEmbedService::remove_model`](crate::NetEmbedService::remove_model),
    /// which pairs the removal with an explicit same-host cache
    /// invalidation.
    pub fn remove(&self, name: &str) -> Option<Arc<Network>> {
        self.models.write().remove(name).map(|e| e.model)
    }

    /// Apply `update` to a copy of the current model and atomically swap
    /// the result in under a fresh epoch, which is returned. `None` when
    /// `name` is unknown. This is the reservation system's hook (§III
    /// component 3): allocate → adjust → epoch bump (which invalidates
    /// exactly this host's cached filters). Untracked: the transition
    /// carries no dirty set, so [`ModelRegistry::dirty_between`] across
    /// it reports `None`.
    pub fn update(&self, name: &str, update: impl FnOnce(&mut Network)) -> Option<ModelEpoch> {
        let mut guard = self.models.write();
        let entry = guard.get(name)?;
        let mut copy = (*entry.model).clone();
        update(&mut copy);
        let epoch = self.next_epoch();
        let entry = guard.get_mut(name).expect("entry probed above");
        entry.model = Arc::new(copy);
        entry.epoch = epoch;
        Some(epoch)
    }

    /// [`ModelRegistry::update`] with a recorded [`DirtySet`]: applies
    /// the mutation under a fresh epoch *and* appends the `(old epoch →
    /// new epoch, dirty)` transition to the host's bounded history, so
    /// [`ModelRegistry::dirty_between`] can later answer "what changed
    /// between these two epochs". Returns the `(from, to)` epoch pair.
    ///
    /// The caller asserts that `dirty` covers every node the mutation
    /// touches (mutated nodes plus both endpoints of mutated edges);
    /// the feed validates that claim per delta before applying.
    pub fn update_dirty(
        &self,
        name: &str,
        dirty: DirtySet,
        update: impl FnOnce(&mut Network),
    ) -> Option<(ModelEpoch, ModelEpoch)> {
        let mut guard = self.models.write();
        let entry = guard.get(name)?;
        let from = entry.epoch;
        let mut copy = (*entry.model).clone();
        update(&mut copy);
        let to = self.next_epoch();
        let entry = guard.get_mut(name).expect("entry probed above");
        entry.model = Arc::new(copy);
        entry.epoch = to;
        entry.history.push_back(Transition { from, to, dirty });
        if entry.history.len() > DIRTY_HISTORY_CAP {
            entry.history.pop_front();
        }
        Some((from, to))
    }

    /// The union of every node dirtied between epochs `e1` and `e2` of
    /// host `name`, or `None` when the answer is unknowable: the host is
    /// unregistered, the window predates the retained history, or the
    /// transition chain from `e1` to `e2` is broken by an untracked
    /// mutation ([`ModelRegistry::update`]) or a wholesale swap
    /// ([`ModelRegistry::register`]). `Some(empty)` for `e1 == e2`.
    /// `None` must be read as "anything may have changed".
    pub fn dirty_between(&self, name: &str, e1: ModelEpoch, e2: ModelEpoch) -> Option<DirtySet> {
        if e1 > e2 {
            return None;
        }
        let guard = self.models.read();
        let entry = guard.get(name)?;
        let mut acc = DirtySet::new();
        if e1 == e2 {
            return Some(acc);
        }
        // History is append-ordered with strictly increasing epochs, so
        // one forward walk either chains e1 → e2 exactly or proves a
        // break (missing link = untracked transition in the window).
        let mut cursor = e1;
        for t in &entry.history {
            if t.from < cursor {
                continue;
            }
            if t.from > cursor {
                return None; // chain broken inside the window
            }
            acc.union_with(&t.dirty);
            cursor = t.to;
            if cursor == e2 {
                return Some(acc);
            }
            if cursor > e2 {
                return None;
            }
        }
        None // ran out of history before reaching e2
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn net(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        for i in 0..n {
            g.add_node(format!("n{i}"));
        }
        g
    }

    #[test]
    fn register_get_remove() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register("a", net(3));
        reg.register("b", net(5));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.model("a").unwrap().node_count(), 3);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.remove("a").unwrap().node_count(), 3);
        assert!(reg.get("a").is_none());
        assert!(reg.epoch("a").is_none());
    }

    #[test]
    fn snapshots_survive_updates() {
        let reg = ModelRegistry::new();
        reg.register("m", net(2));
        let (snapshot, epoch) = reg.get("m").unwrap();
        reg.register("m", net(9));
        // Old snapshot is unaffected; new readers see the update under a
        // newer epoch.
        assert_eq!(snapshot.node_count(), 2);
        let (fresh, fresh_epoch) = reg.get("m").unwrap();
        assert_eq!(fresh.node_count(), 9);
        assert!(fresh_epoch > epoch);
    }

    #[test]
    fn update_in_place_bumps_epoch() {
        let reg = ModelRegistry::new();
        let first = reg.register("m", net(2));
        let updated = reg
            .update("m", |n| {
                n.add_node("extra");
            })
            .unwrap();
        assert!(updated > first);
        assert_eq!(reg.model("m").unwrap().node_count(), 3);
        assert_eq!(reg.epoch("m"), Some(updated));
        assert!(reg.update("missing", |_| {}).is_none());
    }

    #[test]
    fn epochs_are_per_host_and_never_reused() {
        let reg = ModelRegistry::new();
        let a1 = reg.register("a", net(1));
        let b1 = reg.register("b", net(1));
        // Mutating `a` leaves `b`'s epoch untouched.
        let a2 = reg.update("a", |_| {}).unwrap();
        assert_eq!(reg.epoch("b"), Some(b1));
        assert!(a2 > a1);
        // Remove + re-register never resurrects an old epoch.
        reg.remove("a");
        let a3 = reg.register("a", net(1));
        assert!(a3 > a2, "re-registered epoch must be fresh");
        // All epochs seen so far are distinct.
        let mut seen = [a1, b1, a2, a3];
        seen.sort();
        for w in seen.windows(2) {
            assert!(w[0] < w[1], "duplicate epoch");
        }
    }

    #[test]
    fn dirty_between_composes_tracked_transitions() {
        let reg = ModelRegistry::new();
        let e0 = reg.register("m", net(6));
        let (f1, t1) = reg
            .update_dirty("m", DirtySet::from_ids([0, 1]), |n| {
                n.set_node_attr(NodeId(0), "cpu", 4.0);
            })
            .unwrap();
        assert_eq!(f1, e0);
        let (_, t2) = reg
            .update_dirty("m", DirtySet::from_ids([3]), |n| {
                n.set_node_attr(NodeId(3), "cpu", 2.0);
            })
            .unwrap();
        // Identity window, single hop, composed window.
        assert_eq!(reg.dirty_between("m", t2, t2), Some(DirtySet::new()));
        assert_eq!(
            reg.dirty_between("m", e0, t1),
            Some(DirtySet::from_ids([0, 1]))
        );
        assert_eq!(
            reg.dirty_between("m", e0, t2),
            Some(DirtySet::from_ids([0, 1, 3]))
        );
        assert_eq!(
            reg.dirty_between("m", t1, t2),
            Some(DirtySet::from_ids([3]))
        );
        // Reversed and unknown windows are unanswerable.
        assert_eq!(reg.dirty_between("m", t2, e0), None);
        assert_eq!(reg.dirty_between("missing", e0, t2), None);
    }

    #[test]
    fn untracked_mutations_break_the_dirty_chain() {
        let reg = ModelRegistry::new();
        let e0 = reg.register("m", net(4));
        let (_, t1) = reg
            .update_dirty("m", DirtySet::from_ids([1]), |_| {})
            .unwrap();
        // An untracked update bumps the epoch with no dirty record …
        let u = reg.update("m", |_| {}).unwrap();
        // … so any window crossing it is unanswerable, while windows
        // ending before it still compose.
        assert_eq!(reg.dirty_between("m", e0, u), None);
        assert_eq!(reg.dirty_between("m", t1, u), None);
        assert_eq!(
            reg.dirty_between("m", e0, t1),
            Some(DirtySet::from_ids([1]))
        );
        // A wholesale re-register clears the history entirely.
        let (_, t2) = reg
            .update_dirty("m", DirtySet::from_ids([2]), |_| {})
            .unwrap();
        assert_eq!(reg.dirty_between("m", u, t2), Some(DirtySet::from_ids([2])));
        let r = reg.register("m", net(4));
        assert_eq!(reg.dirty_between("m", u, t2), None);
        assert_eq!(reg.dirty_between("m", t2, r), None);
    }

    #[test]
    fn dirty_history_is_bounded() {
        let reg = ModelRegistry::new();
        let e0 = reg.register("m", net(2));
        let mut last = e0;
        let mut froms = Vec::new();
        for i in 0..(DIRTY_HISTORY_CAP as u32 + 8) {
            let (from, to) = reg
                .update_dirty("m", DirtySet::from_ids([i % 2]), |_| {})
                .unwrap();
            froms.push(from);
            last = to;
        }
        // The oldest transitions fell off: a window starting at the
        // seed epoch is no longer answerable …
        assert_eq!(reg.dirty_between("m", e0, last), None);
        // … and neither is one starting just before the retained
        // suffix …
        let oldest_retained = froms[froms.len() - DIRTY_HISTORY_CAP];
        assert_eq!(
            reg.dirty_between("m", froms[froms.len() - DIRTY_HISTORY_CAP - 1], last),
            None
        );
        // … but the retained suffix itself still composes.
        assert_eq!(
            reg.dirty_between("m", oldest_retained, last),
            Some(DirtySet::from_ids([0, 1]))
        );
    }

    #[test]
    fn dirty_set_algebra() {
        let mut d = DirtySet::from_ids([5, 1]);
        d.insert(9);
        assert!(d.contains(1) && d.contains(5) && d.contains(9));
        assert!(!d.contains(2));
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
        d.union_with(&DirtySet::from_ids([5, 7]));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 5, 7, 9]);
        assert!(DirtySet::new().is_empty());

        // Bitset intersection probe: out-of-capacity ids never match.
        let members = NodeBitSet::from_iter(8, [NodeId(1), NodeId(7)]);
        assert!(d.intersects(&members));
        assert!(!DirtySet::from_ids([2, 3, 100]).intersects(&members));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::thread;
        let reg = std::sync::Arc::new(ModelRegistry::new());
        reg.register("m", net(1));
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    if t % 2 == 0 {
                        reg.register("m", net((i % 7) + 1));
                    } else {
                        let (snap, _) = reg.get("m").unwrap();
                        assert!(snap.node_count() >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 100 writes happened; the final epoch reflects every one of them.
        assert!(reg.epoch("m").unwrap() >= ModelEpoch(101));
    }

    #[test]
    fn epochs_strictly_increase_under_concurrent_updates() {
        use std::thread;
        let reg = std::sync::Arc::new(ModelRegistry::new());
        reg.register("m", net(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                let mut epochs = Vec::new();
                for _ in 0..25 {
                    epochs.push(reg.update("m", |_| {}).unwrap());
                }
                epochs
            }));
        }
        let mut all: Vec<ModelEpoch> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "concurrent updates produced duplicate epochs");
    }
}

//! The network-model store (§III component 1).
//!
//! The service keeps "an up-to-date copy of the model" per hosting
//! network; a monitoring pipeline (or the [`crate::monitor`] simulator)
//! replaces models as measurements arrive. Readers get an `Arc` snapshot,
//! so in-flight queries are never affected by a concurrent update —
//! exactly the semantics a replicated NETEMBED deployment needs.

use netgraph::Network;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe named store of hosting-network models.
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<Network>>>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            models: RwLock::new(HashMap::new()),
        }
    }

    /// Register or replace the model for `name`.
    pub fn register(&self, name: &str, model: Network) {
        self.models
            .write()
            .insert(name.to_string(), Arc::new(model));
    }

    /// Snapshot of the model for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<Network>> {
        self.models.read().get(name).cloned()
    }

    /// Remove a model; returns it if present.
    pub fn remove(&self, name: &str) -> Option<Arc<Network>> {
        self.models.write().remove(name)
    }

    /// Apply `update` to a copy of the current model and atomically swap
    /// the result in. Returns false when `name` is unknown. This is the
    /// reservation system's hook (§III component 3): allocate → adjust.
    pub fn update(&self, name: &str, update: impl FnOnce(&mut Network)) -> bool {
        let mut guard = self.models.write();
        let Some(current) = guard.get(name) else {
            return false;
        };
        let mut copy = (**current).clone();
        update(&mut copy);
        guard.insert(name.to_string(), Arc::new(copy));
        true
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn net(n: usize) -> Network {
        let mut g = Network::new(Direction::Undirected);
        for i in 0..n {
            g.add_node(format!("n{i}"));
        }
        g
    }

    #[test]
    fn register_get_remove() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register("a", net(3));
        reg.register("b", net(5));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("a").unwrap().node_count(), 3);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.remove("a").unwrap().node_count(), 3);
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn snapshots_survive_updates() {
        let reg = ModelRegistry::new();
        reg.register("m", net(2));
        let snapshot = reg.get("m").unwrap();
        reg.register("m", net(9));
        // Old snapshot is unaffected; new readers see the update.
        assert_eq!(snapshot.node_count(), 2);
        assert_eq!(reg.get("m").unwrap().node_count(), 9);
    }

    #[test]
    fn update_in_place() {
        let reg = ModelRegistry::new();
        reg.register("m", net(2));
        let ok = reg.update("m", |n| {
            n.add_node("extra");
        });
        assert!(ok);
        assert_eq!(reg.get("m").unwrap().node_count(), 3);
        assert!(!reg.update("missing", |_| {}));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::thread;
        let reg = std::sync::Arc::new(ModelRegistry::new());
        reg.register("m", net(1));
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    if t % 2 == 0 {
                        reg.register("m", net((i % 7) + 1));
                    } else {
                        let snap = reg.get("m").unwrap();
                        assert!(snap.node_count() >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

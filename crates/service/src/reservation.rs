//! Resource reservations (§III component 3): "if a resource reservation
//! system is in place, applications would allocate the selected mapping
//! and the network model would be adjusted accordingly."
//!
//! The manager tracks numeric *capacity attributes* on host nodes (e.g.
//! `cpu`, `mem`). Reserving a mapping atomically decrements, on every host
//! node in the image, the capacities demanded by the query node mapped to
//! it (the query node's value for the same attribute); releasing restores
//! them. Updated models flow back into the [`crate::ModelRegistry`], so
//! subsequent queries see the reduced capacities.

use crate::registry::ModelRegistry;
use netembed::Mapping;
use netgraph::{AttrValue, Network, NodeId};
use parking_lot::Mutex;
use std::fmt;

/// A committed reservation (needed to release).
#[derive(Debug, Clone, PartialEq)]
pub struct Reservation {
    /// Registry model name the reservation applies to.
    pub host: String,
    /// Unique ticket id.
    pub ticket: u64,
    /// Per-host-node deductions: `(host node, attribute name, amount)`.
    pub deductions: Vec<(NodeId, String, f64)>,
}

/// Reservation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ReservationError {
    /// The registry has no model with that name.
    UnknownHost(String),
    /// A host node lacks the demanded capacity.
    Insufficient {
        /// Host node.
        node: NodeId,
        /// Capacity attribute.
        attr: String,
        /// Amount requested.
        requested: f64,
        /// Amount available.
        available: f64,
    },
    /// Ticket not found (double release).
    UnknownTicket(u64),
}

impl fmt::Display for ReservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReservationError::UnknownHost(h) => write!(f, "unknown host model `{h}`"),
            ReservationError::Insufficient {
                node,
                attr,
                requested,
                available,
            } => write!(
                f,
                "host node {node} has {available} of `{attr}`, {requested} requested"
            ),
            ReservationError::UnknownTicket(t) => write!(f, "unknown reservation ticket {t}"),
        }
    }
}

impl std::error::Error for ReservationError {}

/// Tracks active reservations against registry models.
pub struct ReservationManager {
    active: Mutex<Vec<Reservation>>,
    next_ticket: Mutex<u64>,
}

impl ReservationManager {
    /// Manager with no active reservations.
    pub fn new() -> Self {
        ReservationManager {
            active: Mutex::new(Vec::new()),
            next_ticket: Mutex::new(1),
        }
    }

    /// Reserve `mapping`'s resources on the named model.
    ///
    /// `capacities` lists the capacity attributes to honour (e.g.
    /// `["cpu", "mem"]`). For each query node with a numeric value for a
    /// listed attribute, that amount is deducted from the mapped host
    /// node's value. All-or-nothing: any shortfall aborts with no change.
    pub fn reserve(
        &self,
        registry: &ModelRegistry,
        host_name: &str,
        query: &Network,
        mapping: &Mapping,
        capacities: &[&str],
    ) -> Result<Reservation, ReservationError> {
        let model = registry
            .model(host_name)
            .ok_or_else(|| ReservationError::UnknownHost(host_name.to_string()))?;

        // Plan the deductions and validate against the snapshot.
        let mut deductions: Vec<(NodeId, String, f64)> = Vec::new();
        for (q, r) in mapping.iter() {
            for &attr in capacities {
                let Some(demand) = query.node_attr_by_name(q, attr).and_then(AttrValue::as_num)
                else {
                    continue;
                };
                if demand <= 0.0 {
                    continue;
                }
                let available = model
                    .node_attr_by_name(r, attr)
                    .and_then(AttrValue::as_num)
                    .unwrap_or(0.0);
                // Account for earlier deductions in this same plan (two
                // query nodes cannot share a host node, but be safe).
                let planned: f64 = deductions
                    .iter()
                    .filter(|(n, a, _)| *n == r && a == attr)
                    .map(|(_, _, x)| *x)
                    .sum();
                if available - planned < demand {
                    return Err(ReservationError::Insufficient {
                        node: r,
                        attr: attr.to_string(),
                        requested: demand,
                        available: available - planned,
                    });
                }
                deductions.push((r, attr.to_string(), demand));
            }
        }

        // Commit atomically through the registry; the commit bumps the
        // host's model epoch, invalidating exactly this host's cached
        // filters (§III component 3: allocate → adjust).
        let committed = registry.update(host_name, |net| {
            for (node, attr, amount) in &deductions {
                let current = net
                    .node_attr_by_name(*node, attr)
                    .and_then(AttrValue::as_num)
                    .unwrap_or(0.0);
                net.set_node_attr(*node, attr, current - amount);
            }
        });
        if committed.is_none() {
            return Err(ReservationError::UnknownHost(host_name.to_string()));
        }

        let ticket = {
            let mut t = self.next_ticket.lock();
            let ticket = *t;
            *t += 1;
            ticket
        };
        let reservation = Reservation {
            host: host_name.to_string(),
            ticket,
            deductions,
        };
        self.active.lock().push(reservation.clone());
        Ok(reservation)
    }

    /// Release a reservation, restoring capacities.
    pub fn release(&self, registry: &ModelRegistry, ticket: u64) -> Result<(), ReservationError> {
        let reservation = {
            let mut active = self.active.lock();
            let idx = active
                .iter()
                .position(|r| r.ticket == ticket)
                .ok_or(ReservationError::UnknownTicket(ticket))?;
            active.swap_remove(idx)
        };
        let restored = registry.update(&reservation.host, |net| {
            for (node, attr, amount) in &reservation.deductions {
                let current = net
                    .node_attr_by_name(*node, attr)
                    .and_then(AttrValue::as_num)
                    .unwrap_or(0.0);
                net.set_node_attr(*node, attr, current + amount);
            }
        });
        if restored.is_none() {
            return Err(ReservationError::UnknownHost(reservation.host));
        }
        Ok(())
    }

    /// Number of active reservations.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }
}

impl Default for ReservationManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    fn setup() -> (ModelRegistry, Network) {
        let reg = ModelRegistry::new();
        let mut h = Network::new(Direction::Undirected);
        let a = h.add_node("a");
        let b = h.add_node("b");
        h.add_edge(a, b);
        h.set_node_attr(a, "cpu", 8.0);
        h.set_node_attr(b, "cpu", 4.0);
        reg.register("h", h);

        let mut q = Network::new(Direction::Undirected);
        let x = q.add_node("x");
        let y = q.add_node("y");
        q.add_edge(x, y);
        q.set_node_attr(x, "cpu", 3.0);
        q.set_node_attr(y, "cpu", 2.0);
        (reg, q)
    }

    fn cpu(reg: &ModelRegistry, node: u32) -> f64 {
        reg.model("h")
            .unwrap()
            .node_attr_by_name(NodeId(node), "cpu")
            .and_then(AttrValue::as_num)
            .unwrap()
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let (reg, q) = setup();
        let mgr = ReservationManager::new();
        let mapping = Mapping::new(vec![NodeId(0), NodeId(1)]);
        let res = mgr.reserve(&reg, "h", &q, &mapping, &["cpu"]).unwrap();
        assert_eq!(cpu(&reg, 0), 5.0);
        assert_eq!(cpu(&reg, 1), 2.0);
        assert_eq!(mgr.active_count(), 1);

        mgr.release(&reg, res.ticket).unwrap();
        assert_eq!(cpu(&reg, 0), 8.0);
        assert_eq!(cpu(&reg, 1), 4.0);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn insufficient_capacity_rejected_atomically() {
        let (reg, q) = setup();
        let mgr = ReservationManager::new();
        // y (demand 2) mapped to a (8): fine. x (demand 3) to b (4): fine.
        // Take two reservations so b drops to 1, then a third must fail
        // without touching anything.
        let m = Mapping::new(vec![NodeId(1), NodeId(0)]); // x→b, y→a
        mgr.reserve(&reg, "h", &q, &m, &["cpu"]).unwrap();
        assert_eq!(cpu(&reg, 1), 1.0);
        let err = mgr.reserve(&reg, "h", &q, &m, &["cpu"]).unwrap_err();
        assert!(matches!(err, ReservationError::Insufficient { .. }));
        // First reservation still intact; no partial deduction.
        assert_eq!(cpu(&reg, 1), 1.0);
        assert_eq!(cpu(&reg, 0), 6.0);
        assert_eq!(mgr.active_count(), 1);
    }

    #[test]
    fn double_release_rejected() {
        let (reg, q) = setup();
        let mgr = ReservationManager::new();
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        let res = mgr.reserve(&reg, "h", &q, &m, &["cpu"]).unwrap();
        mgr.release(&reg, res.ticket).unwrap();
        assert!(matches!(
            mgr.release(&reg, res.ticket),
            Err(ReservationError::UnknownTicket(_))
        ));
    }

    #[test]
    fn unknown_host_rejected() {
        let (_, q) = setup();
        let empty_reg = ModelRegistry::new();
        let mgr = ReservationManager::new();
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        assert!(matches!(
            mgr.reserve(&empty_reg, "h", &q, &m, &["cpu"]),
            Err(ReservationError::UnknownHost(_))
        ));
    }

    #[test]
    fn reservation_affects_future_queries() {
        let (reg, q) = setup();
        let mgr = ReservationManager::new();
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        mgr.reserve(&reg, "h", &q, &m, &["cpu"]).unwrap();
        // After the reservation, a query demanding cpu ≥ 6 per node is
        // infeasible (capacities now 5 and 2).
        let host = reg.model("h").unwrap();
        let engine = netembed::Engine::new(&host);
        let result = engine
            .embed(&q, "rNode.cpu >= 6.0", &netembed::Options::default())
            .unwrap();
        assert!(result.mappings.is_empty());
    }
}

//! Embedding + scheduling — the paper's second "future work" item (§VIII):
//! *"the embedding problem must be tightly integrated with the scheduling
//! problem — to find a window of time (or the closest window of time) in
//! which some feasible embedding is available"*, motivated by the SNBENCH
//! shared sensor-network infrastructure.
//!
//! Time is modelled in abstract ticks. A [`Scheduler`] keeps a calendar of
//! committed, time-bounded allocations, each deducting capacity attributes
//! from host nodes for its lifetime. `find_window` sweeps the candidate
//! start times (now plus every moment the resource picture changes — i.e.
//! the end of each committed allocation), reconstructs the residual-
//! capacity model at that time, and runs the embedding engine until a
//! feasible window is found.
//!
//! The sweep is session-aware: the scheduler owns a persistent
//! [`netembed::EmbedScratch`] (DFS arenas + worker pool, reused across
//! every start probed and every `find_window` call) and a private
//! [`FilterCache`]. Each candidate start's residual model is identified
//! by the *set of allocations active at that tick* — allocation ids are
//! never reused, so the set fingerprints the model exactly — and the
//! built filter is memoized under it. Re-sweeping an unchanged calendar
//! (the common "ask again for the next job" pattern) rebuilds no
//! filter; committing or cancelling an allocation changes the active
//! sets and thus transparently invalidates exactly the affected
//! windows.

use crate::cache::{network_fingerprint, FilterCache, FilterKey};
use crate::prepared::run_cached;
use crate::registry::ModelEpoch;
use crate::ServiceError;
use netembed::{EmbedScratch, Mapping, Options, Problem, ProblemError, SearchMode};
use netgraph::{AttrValue, Network, NodeId};
use std::fmt;

/// Abstract time tick.
pub type Tick = u64;

/// A committed, time-bounded allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Allocation id.
    pub id: u64,
    /// First tick the resources are held.
    pub start: Tick,
    /// First tick after release (half-open interval `[start, end)`).
    pub end: Tick,
    /// Per-host-node capacity deductions `(node, attr, amount)`.
    pub deductions: Vec<(NodeId, String, f64)>,
}

/// Scheduling errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Engine rejected the query.
    Problem(String),
    /// The requested duration is zero.
    ZeroDuration,
    /// No feasible window within the horizon.
    NoWindow {
        /// The horizon searched up to.
        horizon: Tick,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Problem(e) => write!(f, "{e}"),
            ScheduleError::ZeroDuration => write!(f, "requested duration is zero"),
            ScheduleError::NoWindow { horizon } => {
                write!(f, "no feasible window up to tick {horizon}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ProblemError> for ScheduleError {
    fn from(e: ProblemError) -> Self {
        ScheduleError::Problem(e.to_string())
    }
}

/// A granted window: when to start, and the embedding that fits there.
#[derive(Debug, Clone)]
pub struct ScheduledEmbedding {
    /// Allocation id in the calendar.
    pub id: u64,
    /// Start tick of the window.
    pub start: Tick,
    /// End tick (exclusive).
    pub end: Tick,
    /// The node mapping valid in that window.
    pub mapping: Mapping,
}

/// The embedding-aware scheduler.
pub struct Scheduler {
    /// Base (unloaded) hosting network.
    base: Network,
    /// Capacity attributes managed over time (e.g. `["cpu"]`).
    capacities: Vec<String>,
    calendar: Vec<Allocation>,
    next_id: u64,
    /// Memoized filters per residual model (see module docs).
    cache: FilterCache,
    /// Persistent search arenas + worker pool for the sweep.
    scratch: EmbedScratch,
}

impl Scheduler {
    /// A scheduler over `base` managing the listed capacity attributes,
    /// with the default filter-cache capacity
    /// ([`crate::cache::DEFAULT_CAPACITY`] residual models).
    pub fn new(base: Network, capacities: &[&str]) -> Self {
        Self::with_cache_capacity(base, capacities, crate::cache::DEFAULT_CAPACITY)
    }

    /// [`Scheduler::new`] with an explicit filter-cache capacity. Size
    /// it to at least the number of candidate starts one `find_window`
    /// sweep probes (≈ concurrently committed allocations + 1);
    /// a smaller cache still answers correctly but evicts its own
    /// entries mid-sweep, losing the re-sweep amortization.
    pub fn with_cache_capacity(base: Network, capacities: &[&str], cache_capacity: usize) -> Self {
        Scheduler {
            base,
            capacities: capacities.iter().map(|s| s.to_string()).collect(),
            calendar: Vec::new(),
            next_id: 1,
            cache: FilterCache::with_capacity(cache_capacity),
            scratch: EmbedScratch::new(),
        }
    }

    /// The scheduler's filter cache (hit/miss counters for
    /// observability and tests).
    pub fn cache(&self) -> &FilterCache {
        &self.cache
    }

    /// Cache namespace for the residual model at tick `t`: the set of
    /// allocations active then. Ids are monotonic and never reused, and
    /// each id's deductions are immutable, so equal sets ⇒ identical
    /// residual models.
    fn residual_namespace(&self, t: Tick) -> String {
        let mut active: Vec<u64> = self
            .calendar
            .iter()
            .filter(|a| a.start <= t && t < a.end)
            .map(|a| a.id)
            .collect();
        active.sort_unstable();
        // The id list itself is the namespace — collision-free by
        // construction (and short: it only lists *concurrently active*
        // allocations).
        format!("@sched:{active:?}")
    }

    /// Committed allocations, sorted by start tick.
    pub fn calendar(&self) -> &[Allocation] {
        &self.calendar
    }

    /// The residual-capacity model at tick `t`: base capacities minus the
    /// deductions of every allocation active at `t`.
    pub fn model_at(&self, t: Tick) -> Network {
        let mut model = self.base.clone();
        for alloc in &self.calendar {
            if alloc.start <= t && t < alloc.end {
                for (node, attr, amount) in &alloc.deductions {
                    let current = model
                        .node_attr_by_name(*node, attr)
                        .and_then(AttrValue::as_num)
                        .unwrap_or(0.0);
                    model.set_node_attr(*node, attr, current - amount);
                }
            }
        }
        model
    }

    /// Candidate start times in `[from, horizon)`: `from` itself plus the
    /// end of every allocation (the only moments capacity increases).
    fn candidate_starts(&self, from: Tick, horizon: Tick) -> Vec<Tick> {
        let mut starts = vec![from];
        for a in &self.calendar {
            if a.end > from && a.end < horizon {
                starts.push(a.end);
            }
        }
        starts.sort_unstable();
        starts.dedup();
        starts
    }

    /// True when the residual model stays feasible for `mapping`'s demands
    /// during the whole `[start, end)` window.
    fn window_has_capacity(
        &self,
        query: &Network,
        mapping: &Mapping,
        start: Tick,
        end: Tick,
    ) -> bool {
        // Capacity only changes at allocation boundaries inside the window.
        let mut checkpoints = vec![start];
        for a in &self.calendar {
            if a.start > start && a.start < end {
                checkpoints.push(a.start);
            }
        }
        for t in checkpoints {
            let model = self.model_at(t);
            for (q, r) in mapping.iter() {
                for attr in &self.capacities {
                    let Some(need) = query.node_attr_by_name(q, attr).and_then(AttrValue::as_num)
                    else {
                        continue;
                    };
                    let avail = model
                        .node_attr_by_name(r, attr)
                        .and_then(AttrValue::as_num)
                        .unwrap_or(0.0);
                    if avail < need {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Find the earliest window of `duration` ticks in `[from, horizon)`
    /// where `query` embeds under `constraint` with capacity to spare, and
    /// commit it to the calendar.
    ///
    /// The constraint should include the capacity comparison (e.g.
    /// `rNode.cpu >= vNode.cpu`) so the *embedding* search already honours
    /// residual capacities; the scheduler additionally re-checks capacity
    /// at every boundary inside the window (an embedding found at `t` must
    /// survive allocations that *start* mid-window).
    pub fn find_window(
        &mut self,
        query: &Network,
        constraint: &str,
        duration: Tick,
        from: Tick,
        horizon: Tick,
        options: &Options,
    ) -> Result<ScheduledEmbedding, ScheduleError> {
        if duration == 0 {
            return Err(ScheduleError::ZeroDuration);
        }
        // Parse once for the whole sweep; every start re-binds the same
        // expression to its residual model.
        // Same up-front checks as every other service entry point
        // (parse *and* static type lint), parsed once for the whole
        // sweep; every start re-binds the same expression.
        let expr =
            crate::parse_and_lint(constraint).map_err(|e| ScheduleError::Problem(e.to_string()))?;
        let query_hash = network_fingerprint(query);
        let mut options = options.clone();
        options.mode = SearchMode::UpTo(16); // a few candidates to re-check
        for start in self.candidate_starts(from, horizon) {
            if start + duration > horizon {
                break;
            }
            let model = self.model_at(start);
            let namespace = self.residual_namespace(start);
            let problem = Problem::from_parsed(query, &model, &expr)?;
            let key = FilterKey {
                host: namespace,
                epoch: ModelEpoch(0),
                query_hash,
                constraint: constraint.to_string(),
            };
            // Each start probes its own key once — no batch-local pin.
            let result = run_cached(
                crate::prepared::RunCtx::bare(&self.cache),
                &key,
                &problem,
                &options,
                &mut self.scratch,
                &mut None,
            )
            .map_err(|e| match e {
                ServiceError::Problem(p) => ScheduleError::from(p),
                other => ScheduleError::Problem(other.to_string()),
            })?;
            for mapping in &result.mappings {
                if self.window_has_capacity(query, mapping, start, start + duration) {
                    let deductions = self.plan_deductions(query, mapping);
                    let id = self.next_id;
                    self.next_id += 1;
                    let alloc = Allocation {
                        id,
                        start,
                        end: start + duration,
                        deductions,
                    };
                    let pos = self
                        .calendar
                        .binary_search_by_key(&start, |a| a.start)
                        .unwrap_or_else(|p| p);
                    self.calendar.insert(pos, alloc);
                    return Ok(ScheduledEmbedding {
                        id,
                        start,
                        end: start + duration,
                        mapping: mapping.clone(),
                    });
                }
            }
        }
        Err(ScheduleError::NoWindow { horizon })
    }

    /// Cancel a committed allocation. Returns true when found.
    pub fn cancel(&mut self, id: u64) -> bool {
        match self.calendar.iter().position(|a| a.id == id) {
            Some(i) => {
                self.calendar.remove(i);
                true
            }
            None => false,
        }
    }

    fn plan_deductions(&self, query: &Network, mapping: &Mapping) -> Vec<(NodeId, String, f64)> {
        let mut out = Vec::new();
        for (q, r) in mapping.iter() {
            for attr in &self.capacities {
                if let Some(need) = query.node_attr_by_name(q, attr).and_then(AttrValue::as_num) {
                    if need > 0.0 {
                        out.push((r, attr.clone(), need));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::Direction;

    /// 4 hosts, 4 cpu each, fully wired.
    fn base() -> Network {
        let mut h = Network::new(Direction::Undirected);
        let ids: Vec<NodeId> = (0..4).map(|i| h.add_node(format!("h{i}"))).collect();
        for &n in &ids {
            h.set_node_attr(n, "cpu", 4.0);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                h.add_edge(ids[i], ids[j]);
            }
        }
        h
    }

    /// 2-node query needing `demand` cpu per node.
    fn q(demand: f64) -> Network {
        let mut q = Network::new(Direction::Undirected);
        let a = q.add_node("a");
        let b = q.add_node("b");
        q.add_edge(a, b);
        q.set_node_attr(a, "cpu", demand);
        q.set_node_attr(b, "cpu", demand);
        q
    }

    const CAP: &str = "rNode.cpu >= vNode.cpu";

    #[test]
    fn immediate_window_when_unloaded() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        let w = s
            .find_window(&q(3.0), CAP, 10, 0, 100, &Options::default())
            .unwrap();
        assert_eq!(w.start, 0);
        assert_eq!(w.end, 10);
        assert_eq!(s.calendar().len(), 1);
    }

    #[test]
    fn saturated_now_waits_for_release() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        // Two big slices occupy all four hosts until tick 20.
        for _ in 0..2 {
            let w = s
                .find_window(&q(3.0), CAP, 20, 0, 100, &Options::default())
                .unwrap();
            assert_eq!(w.start, 0);
        }
        // Third request cannot fit before tick 20.
        let w = s
            .find_window(&q(3.0), CAP, 10, 0, 100, &Options::default())
            .unwrap();
        assert_eq!(w.start, 20);
    }

    #[test]
    fn partial_load_allows_small_queries_now() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        s.find_window(&q(3.0), CAP, 50, 0, 100, &Options::default())
            .unwrap();
        // 1-cpu residual on two hosts, 4 on the others: a 2-cpu query fits
        // immediately on the unloaded pair.
        let w = s
            .find_window(&q(2.0), CAP, 10, 0, 100, &Options::default())
            .unwrap();
        assert_eq!(w.start, 0);
    }

    #[test]
    fn no_window_within_horizon() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        // Demand exceeds total capacity: never feasible.
        let err = s
            .find_window(&q(9.0), CAP, 10, 0, 50, &Options::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoWindow { horizon: 50 }));
        // Feasible demand but the duration does not fit the horizon.
        for _ in 0..2 {
            s.find_window(&q(3.0), CAP, 40, 0, 100, &Options::default())
                .unwrap();
        }
        let err = s
            .find_window(&q(3.0), CAP, 70, 0, 100, &Options::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoWindow { .. }));
    }

    #[test]
    fn cancellation_frees_the_window() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        let mut ids = Vec::new();
        for _ in 0..2 {
            ids.push(
                s.find_window(&q(3.0), CAP, 30, 0, 100, &Options::default())
                    .unwrap()
                    .id,
            );
        }
        let late = s
            .find_window(&q(3.0), CAP, 10, 0, 100, &Options::default())
            .unwrap();
        assert_eq!(late.start, 30);
        assert!(s.cancel(ids[0]));
        assert!(!s.cancel(ids[0])); // double cancel
        let now = s
            .find_window(&q(3.0), CAP, 10, 0, 100, &Options::default())
            .unwrap();
        assert_eq!(now.start, 0);
    }

    #[test]
    fn mid_window_allocation_start_respected() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        // Allocation A: [10, 40) occupying two hosts heavily. Committed
        // first with an artificial calendar entry.
        let w1 = s
            .find_window(&q(3.0), CAP, 30, 10, 100, &Options::default())
            .unwrap();
        assert_eq!(w1.start, 10);
        // A long window starting at 0 must survive A starting at tick 10 —
        // i.e. it must avoid A's two hosts even though they are free at 0.
        let w2 = s
            .find_window(&q(3.0), CAP, 30, 0, 100, &Options::default())
            .unwrap();
        assert_eq!(w2.start, 0);
        let a_hosts: std::collections::HashSet<NodeId> =
            w1.mapping.iter().map(|(_, r)| r).collect();
        for (_, r) in w2.mapping.iter() {
            assert!(
                !a_hosts.contains(&r),
                "window 2 overlaps allocation 1's hosts"
            );
        }
    }

    #[test]
    fn unchanged_calendar_resweep_hits_filter_cache() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        // Infeasible demand: the sweep probes every start, builds the
        // residual filters, commits nothing.
        let err = s
            .find_window(&q(9.0), CAP, 10, 0, 50, &Options::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoWindow { .. }));
        let misses = s.cache().misses();
        assert!(misses > 0, "first sweep must build");
        // Same sweep, unchanged calendar: all cache hits, zero rebuilds.
        let _ = s
            .find_window(&q(9.0), CAP, 10, 0, 50, &Options::default())
            .unwrap_err();
        assert_eq!(s.cache().misses(), misses, "re-sweep rebuilt a filter");
        assert!(s.cache().hits() > 0);
        // Committing an allocation changes the active set at its window:
        // the next sweep of an overlapping start must rebuild.
        s.find_window(&q(3.0), CAP, 20, 0, 100, &Options::default())
            .unwrap();
        let misses_before = s.cache().misses();
        let _ = s
            .find_window(&q(9.0), CAP, 10, 0, 50, &Options::default())
            .unwrap_err();
        assert!(
            s.cache().misses() > misses_before,
            "commit must invalidate overlapping residual filters"
        );
    }

    #[test]
    fn ill_typed_constraint_rejected_before_the_sweep() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        let err = s
            .find_window(&q(1.0), "\"fast\" == 1", 10, 0, 50, &Options::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Problem(_)), "{err}");
        let err = s
            .find_window(&q(1.0), "1 +", 10, 0, 50, &Options::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Problem(_)), "{err}");
    }

    #[test]
    fn zero_duration_rejected() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        assert!(matches!(
            s.find_window(&q(1.0), CAP, 0, 0, 10, &Options::default()),
            Err(ScheduleError::ZeroDuration)
        ));
    }

    #[test]
    fn model_at_reflects_calendar() {
        let mut s = Scheduler::new(base(), &["cpu"]);
        let w = s
            .find_window(&q(3.0), CAP, 10, 5, 100, &Options::default())
            .unwrap();
        assert_eq!(w.start, 5);
        let before = s.model_at(0);
        let during = s.model_at(7);
        let after = s.model_at(20);
        let host0 = w.mapping.iter().next().unwrap().1;
        let cpu = |m: &Network| {
            m.node_attr_by_name(host0, "cpu")
                .and_then(AttrValue::as_num)
                .unwrap()
        };
        assert_eq!(cpu(&before), 4.0);
        assert_eq!(cpu(&during), 1.0);
        assert_eq!(cpu(&after), 4.0);
    }
}

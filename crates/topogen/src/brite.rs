//! BRITE-like Internet topology generation.
//!
//! The paper generates hosting networks with BRITE \[18\] using "the
//! power-law models of node connectivity of the Internet" — BRITE's
//! Barabási–Albert mode. The reported edge counts (N=1500/E=3030,
//! N=2000/E=4040, N=2500/E=5020) match incremental growth with m = 2 links
//! per new node, so that is the default here. A Waxman mode is included for
//! variety (BRITE offers both).
//!
//! As in BRITE, nodes are placed in a plane and link delays are derived
//! from Euclidean distance (propagation delay), so the delay distribution
//! is spatially coherent rather than i.i.d.

use netgraph::{Direction, Network, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// Growth model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BriteMode {
    /// Incremental growth with preferential attachment (power-law degrees).
    BarabasiAlbert,
    /// Random geometric model: P(u,v) = α·exp(−d/(β·L)).
    Waxman,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct BriteParams {
    /// Number of nodes.
    pub n: usize,
    /// Links added per new node (BA) / expected mean degree control (Waxman).
    pub m: usize,
    /// Growth model.
    pub mode: BriteMode,
    /// Side of the placement plane, in "kilometres". Delay(ms) ≈ d/200 —
    /// the speed of light in fibre is roughly 200 km/ms.
    pub plane_km: f64,
    /// Waxman α (edge probability scale); ignored for BA.
    pub alpha: f64,
    /// Waxman β (distance decay); ignored for BA.
    pub beta: f64,
}

impl BriteParams {
    /// Defaults matching the paper's BRITE runs: BA with m=2.
    pub fn paper_default(n: usize) -> Self {
        BriteParams {
            n,
            m: 2,
            mode: BriteMode::BarabasiAlbert,
            plane_km: 10_000.0,
            alpha: 0.15,
            beta: 0.2,
        }
    }
}

/// Generate a BRITE-like hosting network.
///
/// Node attributes: `x`, `y` (plane coordinates, km), `cpu` (1–16 relative
/// units), `osType` (one of four strings). Edge attributes: `avgDelay`,
/// `minDelay`, `maxDelay` in milliseconds (propagation + queueing jitter).
pub fn brite_like(params: &BriteParams, rng: &mut StdRng) -> Network {
    assert!(params.n > params.m, "need n > m");
    let mut g = Network::new(Direction::Undirected);
    g.set_name(format!(
        "brite-{}-{}",
        match params.mode {
            BriteMode::BarabasiAlbert => "ba",
            BriteMode::Waxman => "waxman",
        },
        params.n
    ));

    // Place nodes uniformly in the plane.
    let mut pos = Vec::with_capacity(params.n);
    for i in 0..params.n {
        let id = g.add_node(format!("r{i}"));
        let (x, y) = (
            rng.random_range(0.0..params.plane_km),
            rng.random_range(0.0..params.plane_km),
        );
        pos.push((x, y));
        g.set_node_attr(id, "x", x);
        g.set_node_attr(id, "y", y);
        g.set_node_attr(id, "cpu", rng.random_range(1..=16) as f64);
        let os = ["linux-2.6", "linux-2.4", "freebsd-5", "solaris-9"][rng.random_range(0..4)];
        g.set_node_attr(id, "osType", os);
    }

    match params.mode {
        BriteMode::BarabasiAlbert => grow_ba(&mut g, params, &pos, rng),
        BriteMode::Waxman => grow_waxman(&mut g, params, &pos, rng),
    }
    g
}

fn add_delay_edge(g: &mut Network, u: NodeId, v: NodeId, pos: &[(f64, f64)], rng: &mut StdRng) {
    let (x1, y1) = pos[u.index()];
    let (x2, y2) = pos[v.index()];
    let dist = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
    // Propagation delay plus a small queueing component.
    let base = dist / 200.0 + 0.5;
    let jitter = rng.random_range(0.0..0.3 * base);
    let avg = base + jitter;
    let e = g.add_edge(u, v);
    g.set_edge_attr(e, "avgDelay", avg);
    g.set_edge_attr(e, "minDelay", base);
    g.set_edge_attr(e, "maxDelay", avg + rng.random_range(0.0..0.5 * base));
}

fn grow_ba(g: &mut Network, params: &BriteParams, pos: &[(f64, f64)], rng: &mut StdRng) {
    let n = params.n;
    let m = params.m;
    // Seed: a clique on the first m+1 nodes (BRITE uses m0 = m seed nodes;
    // a small clique keeps the seed connected).
    for i in 0..=m {
        for j in (i + 1)..=m {
            add_delay_edge(g, NodeId(i as u32), NodeId(j as u32), pos, rng);
        }
    }
    // Repeated-endpoint list for preferential attachment: each edge
    // contributes both endpoints, so sampling uniformly from it is
    // proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for e in g.edge_refs() {
        endpoints.push(e.src);
        endpoints.push(e.dst);
    }
    for i in (m + 1)..n {
        let new = NodeId(i as u32);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 10_000 {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != new && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            add_delay_edge(g, new, t, pos, rng);
            endpoints.push(new);
            endpoints.push(t);
        }
    }
}

fn grow_waxman(g: &mut Network, params: &BriteParams, pos: &[(f64, f64)], rng: &mut StdRng) {
    let n = params.n;
    let l = params.plane_km * std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in (i + 1)..n {
            let (x1, y1) = pos[i];
            let (x2, y2) = pos[j];
            let d = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                add_delay_edge(g, NodeId(i as u32), NodeId(j as u32), pos, rng);
            }
        }
    }
    // Waxman can leave isolated components; stitch them along a random
    // order so the host is usable for connected-subgraph sampling.
    let comps = netgraph::algo::connected_components(g);
    for w in comps.windows(2) {
        let u = w[0][rng.random_range(0..w[0].len())];
        let v = w[1][rng.random_range(0..w[1].len())];
        add_delay_edge(g, u, v, pos, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use netgraph::{algo, metrics, AttrValue};

    #[test]
    fn ba_edge_count_matches_paper_shape() {
        // Paper: N=1500 → E=3030 ≈ 2N. With m=2: E = C(3,2) + 2·(N-3).
        let mut r = rng(7);
        let g = brite_like(&BriteParams::paper_default(1500), &mut r);
        assert_eq!(g.node_count(), 1500);
        let e = g.edge_count();
        assert!((2990..=3010).contains(&e), "edge count {e} out of range");
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn ba_has_heavy_tail() {
        let mut r = rng(8);
        let g = brite_like(&BriteParams::paper_default(800), &mut r);
        // Preferential attachment should produce hubs far above the mean.
        let mean = metrics::mean_degree(&g);
        let max = metrics::max_degree(&g);
        assert!(
            max as f64 > 4.0 * mean,
            "max degree {max} vs mean {mean} — no hub formed"
        );
    }

    #[test]
    fn delays_positive_and_ordered() {
        let mut r = rng(9);
        let g = brite_like(&BriteParams::paper_default(200), &mut r);
        for e in g.edge_refs() {
            let min = g.edge_attr_by_name2(e.id, "minDelay");
            let avg = g.edge_attr_by_name2(e.id, "avgDelay");
            let max = g.edge_attr_by_name2(e.id, "maxDelay");
            assert!(min > 0.0);
            assert!(min <= avg && avg <= max, "delay order violated");
        }
    }

    #[test]
    fn waxman_connected_and_deterministic() {
        let p = BriteParams {
            mode: BriteMode::Waxman,
            ..BriteParams::paper_default(300)
        };
        let g1 = brite_like(&p, &mut rng(42));
        let g2 = brite_like(&p, &mut rng(42));
        assert!(algo::is_connected(&g1));
        assert_eq!(g1.edge_count(), g2.edge_count());
    }

    #[test]
    fn node_attrs_present() {
        let mut r = rng(10);
        let g = brite_like(&BriteParams::paper_default(50), &mut r);
        for v in g.node_ids() {
            assert!(g.node_attr_by_name(v, "cpu").is_some());
            assert!(matches!(
                g.node_attr_by_name(v, "osType"),
                Some(AttrValue::Str(_))
            ));
        }
    }

    // Small helper used by tests only.
    trait EdgeAttrNum {
        fn edge_attr_by_name2(&self, e: netgraph::EdgeId, name: &str) -> f64;
    }
    impl EdgeAttrNum for Network {
        fn edge_attr_by_name2(&self, e: netgraph::EdgeId, name: &str) -> f64 {
            self.edge_attr_by_name(e, name)
                .and_then(AttrValue::as_num)
                .unwrap()
        }
    }
}

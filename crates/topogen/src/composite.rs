//! Composite (two-level hierarchical) query topologies — §VII-D.
//!
//! A composite query has a regular root-level structure (ring, star or
//! clique) whose vertices are themselves regular structures; root-level
//! links connect the *gateway* (first) node of each group. The paper
//! motivates these with multicast trees, DHTs and ring overlays.
//!
//! Each edge is tagged with a numeric `tier` attribute (0 = root level,
//! 1 = leaf level) so [`crate::workload`] can assign per-level delay
//! windows (75–350 ms inter-site, 1–75 ms intra-site in the paper's
//! "regular constraints" variant).

use netgraph::{Direction, Network, NodeId};

/// Shape of one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Cycle.
    Ring,
    /// Hub and spokes (hub is the gateway).
    Star,
    /// Complete graph.
    Clique,
}

/// Two-level composite specification.
#[derive(Debug, Clone, Copy)]
pub struct CompositeSpec {
    /// Root-level shape (how groups interconnect).
    pub root: Level,
    /// Number of groups. Ring needs ≥ 3, star/clique ≥ 2.
    pub groups: usize,
    /// Leaf-level shape (structure within each group).
    pub leaf: Level,
    /// Nodes per group. Ring needs ≥ 3, star/clique ≥ 2; 1 collapses the
    /// group to a single gateway node.
    pub group_size: usize,
}

impl CompositeSpec {
    /// Total node count of the composite query.
    pub fn node_count(&self) -> usize {
        self.groups * self.group_size
    }
}

/// Build the composite query topology. Edges carry `tier` (0 root, 1 leaf).
pub fn composite_query(spec: &CompositeSpec) -> Network {
    assert!(
        spec.groups >= min_size(spec.root),
        "too few groups for root shape"
    );
    assert!(
        spec.group_size == 1 || spec.group_size >= min_size(spec.leaf),
        "group_size too small for leaf shape"
    );
    let mut g = Network::new(Direction::Undirected);
    g.set_name(format!(
        "composite-{:?}x{}-{:?}x{}",
        spec.root, spec.groups, spec.leaf, spec.group_size
    ));
    // Nodes: group k occupies ids [k*group_size, (k+1)*group_size).
    for k in 0..spec.groups {
        for i in 0..spec.group_size {
            g.add_node(format!("g{k}n{i}"));
        }
    }
    let gateway = |k: usize| NodeId((k * spec.group_size) as u32);
    let member = |k: usize, i: usize| NodeId((k * spec.group_size + i) as u32);

    // Leaf level.
    if spec.group_size > 1 {
        for k in 0..spec.groups {
            match spec.leaf {
                Level::Ring => {
                    for i in 0..spec.group_size {
                        let e = g.add_edge(member(k, i), member(k, (i + 1) % spec.group_size));
                        g.set_edge_attr(e, "tier", 1.0);
                    }
                }
                Level::Star => {
                    for i in 1..spec.group_size {
                        let e = g.add_edge(gateway(k), member(k, i));
                        g.set_edge_attr(e, "tier", 1.0);
                    }
                }
                Level::Clique => {
                    for i in 0..spec.group_size {
                        for j in (i + 1)..spec.group_size {
                            let e = g.add_edge(member(k, i), member(k, j));
                            g.set_edge_attr(e, "tier", 1.0);
                        }
                    }
                }
            }
        }
    }

    // Root level over gateways.
    match spec.root {
        Level::Ring => {
            for k in 0..spec.groups {
                let e = g.add_edge(gateway(k), gateway((k + 1) % spec.groups));
                g.set_edge_attr(e, "tier", 0.0);
            }
        }
        Level::Star => {
            for k in 1..spec.groups {
                let e = g.add_edge(gateway(0), gateway(k));
                g.set_edge_attr(e, "tier", 0.0);
            }
        }
        Level::Clique => {
            for a in 0..spec.groups {
                for b in (a + 1)..spec.groups {
                    let e = g.add_edge(gateway(a), gateway(b));
                    g.set_edge_attr(e, "tier", 0.0);
                }
            }
        }
    }
    g
}

fn min_size(level: Level) -> usize {
    match level {
        Level::Ring => 3,
        Level::Star | Level::Clique => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{algo, AttrValue};

    fn tier_count(g: &Network, tier: f64) -> usize {
        g.edge_refs()
            .filter(|e| {
                g.edge_attr_by_name(e.id, "tier")
                    .and_then(AttrValue::as_num)
                    == Some(tier)
            })
            .count()
    }

    #[test]
    fn ring_of_stars() {
        let spec = CompositeSpec {
            root: Level::Ring,
            groups: 4,
            leaf: Level::Star,
            group_size: 5,
        };
        let g = composite_query(&spec);
        assert_eq!(g.node_count(), 20);
        // Leaf: 4 stars × 4 edges; root: ring of 4.
        assert_eq!(tier_count(&g, 1.0), 16);
        assert_eq!(tier_count(&g, 0.0), 4);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn star_of_rings() {
        let spec = CompositeSpec {
            root: Level::Star,
            groups: 3,
            leaf: Level::Ring,
            group_size: 3,
        };
        let g = composite_query(&spec);
        assert_eq!(g.node_count(), 9);
        assert_eq!(tier_count(&g, 1.0), 9); // 3 rings of 3
        assert_eq!(tier_count(&g, 0.0), 2); // star over 3 gateways
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn clique_of_cliques() {
        let spec = CompositeSpec {
            root: Level::Clique,
            groups: 3,
            leaf: Level::Clique,
            group_size: 4,
        };
        let g = composite_query(&spec);
        assert_eq!(g.node_count(), 12);
        assert_eq!(tier_count(&g, 1.0), 3 * 6);
        assert_eq!(tier_count(&g, 0.0), 3);
    }

    #[test]
    fn singleton_groups_collapse_to_root_shape() {
        let spec = CompositeSpec {
            root: Level::Ring,
            groups: 5,
            leaf: Level::Clique,
            group_size: 1,
        };
        let g = composite_query(&spec);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(tier_count(&g, 0.0), 5);
    }

    #[test]
    #[should_panic(expected = "too few groups")]
    fn tiny_root_ring_panics() {
        composite_query(&CompositeSpec {
            root: Level::Ring,
            groups: 2,
            leaf: Level::Star,
            group_size: 2,
        });
    }
}

//! Datacenter-scale hosting substrates: fat-tree/Clos fabrics and
//! power-law (Barabási–Albert-style) graphs at 10⁴–10⁶ nodes.
//!
//! These are the demo substrates for the multilevel hierarchy
//! (`netembed::hierarchy`): far past the paper's N=2500 BRITE runs,
//! where a flat `O(|VQ|·|VR|)` filter build is the bottleneck. Both
//! generators plant attribute structure the hierarchy can prune on —
//! the fat-tree tags every node with its `tier` and `pod`, the
//! power-law graph plants a small connected `region = "hot"` cluster —
//! so a region- or tier-constrained query eliminates whole super-node
//! subtrees at the coarsest levels.
//!
//! Deterministic given a seed, like every generator in this crate.

use netgraph::{Direction, Network, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of a [`fat_tree`] Clos fabric.
#[derive(Debug, Clone)]
pub struct FatTreeParams {
    /// Switch radix `k` (even, ≥ 2): `(k/2)²` core switches, `k` pods
    /// of `k/2` aggregation and `k/2` edge switches each.
    pub k: usize,
    /// Hosts attached to every edge switch (the classic fat-tree uses
    /// `k/2`; scale this to hit a node budget).
    pub hosts_per_edge: usize,
}

impl FatTreeParams {
    /// A `k`-ary fat-tree with the classic `k/2` hosts per edge switch.
    pub fn classic(k: usize) -> Self {
        FatTreeParams {
            k,
            hosts_per_edge: k / 2,
        }
    }

    /// Total node count this parameterization produces.
    pub fn node_count(&self) -> usize {
        let k = self.k;
        (k / 2) * (k / 2) + k * (k / 2) * 2 + k * (k / 2) * self.hosts_per_edge
    }
}

/// Generate a fat-tree/Clos hosting network.
///
/// Node attributes: `tier` (`"core"`/`"agg"`/`"edge"`/`"host"`), `pod`
/// (pod index; -1 for core), `cpu` (hosts only carry real capacity,
/// switches get 0). Edge attributes: `bw` (40 core↔agg, 10 agg↔edge,
/// 1 edge↔host, with a small jitter) and `delay` (sub-millisecond,
/// longer across tiers).
pub fn fat_tree(params: &FatTreeParams, rng: &mut StdRng) -> Network {
    let k = params.k;
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree radix must be even and >= 2"
    );
    let half = k / 2;
    let mut g = Network::new(Direction::Undirected);
    g.set_name(format!("fattree-k{}-h{}", k, params.hosts_per_edge));

    let link = |g: &mut Network, u: NodeId, v: NodeId, bw: f64, delay: f64, rng: &mut StdRng| {
        let e = g.add_edge(u, v);
        g.set_edge_attr(e, "bw", bw * (1.0 - rng.random_range(0.0..0.05)));
        g.set_edge_attr(e, "delay", delay + rng.random_range(0.0..0.02));
    };

    // Core switches: (k/2)² of them.
    let mut core = Vec::with_capacity(half * half);
    for i in 0..half * half {
        let id = g.add_node(format!("core{i}"));
        g.set_node_attr(id, "tier", "core");
        g.set_node_attr(id, "pod", -1.0);
        g.set_node_attr(id, "cpu", 0.0);
        core.push(id);
    }
    // Pods.
    for p in 0..k {
        let mut agg = Vec::with_capacity(half);
        for a in 0..half {
            let id = g.add_node(format!("agg{p}-{a}"));
            g.set_node_attr(id, "tier", "agg");
            g.set_node_attr(id, "pod", p as f64);
            g.set_node_attr(id, "cpu", 0.0);
            // Aggregation switch `a` uplinks to core group `a`.
            for c in 0..half {
                link(&mut g, id, core[a * half + c], 40.0, 0.05, rng);
            }
            agg.push(id);
        }
        for e in 0..half {
            let edge_sw = g.add_node(format!("edge{p}-{e}"));
            g.set_node_attr(edge_sw, "tier", "edge");
            g.set_node_attr(edge_sw, "pod", p as f64);
            g.set_node_attr(edge_sw, "cpu", 0.0);
            for &a in &agg {
                link(&mut g, edge_sw, a, 10.0, 0.03, rng);
            }
            for h in 0..params.hosts_per_edge {
                let host = g.add_node(format!("h{p}-{e}-{h}"));
                g.set_node_attr(host, "tier", "host");
                g.set_node_attr(host, "pod", p as f64);
                g.set_node_attr(host, "cpu", rng.random_range(4..=64) as f64);
                link(&mut g, host, edge_sw, 1.0, 0.01, rng);
            }
        }
    }
    g
}

/// Parameters of a [`power_law`] substrate.
#[derive(Debug, Clone)]
pub struct PowerLawParams {
    /// Number of nodes.
    pub n: usize,
    /// Links added per new node (preferential attachment).
    pub m: usize,
    /// Size of the planted `region = "hot"` cluster: the first
    /// `hot_nodes` nodes of the growth process. Connected by
    /// construction (every BA node attaches to an earlier one), and
    /// high-degree (early nodes accumulate attachment), so a
    /// hot-region query is feasible while the remaining
    /// `n - hot_nodes` nodes — the bulk — prune away at coarse levels.
    pub hot_nodes: usize,
}

impl PowerLawParams {
    /// `n` nodes, m=2 growth, a 64-node hot region.
    pub fn paper_default(n: usize) -> Self {
        PowerLawParams {
            n,
            m: 2,
            hot_nodes: 64.min(n / 2),
        }
    }
}

/// Generate a power-law (Barabási–Albert-style) hosting network with a
/// planted hot region.
///
/// Node attributes: `region` (`"hot"` for the first
/// [`PowerLawParams::hot_nodes`] nodes, `"bulk"` otherwise), `cpu`
/// (1–32). Edge attributes: `bw` (heavy-tailed, hubs get fatter
/// links), `delay` (0.1–5 ms).
pub fn power_law(params: &PowerLawParams, rng: &mut StdRng) -> Network {
    let n = params.n;
    let m = params.m.max(1);
    assert!(n > m, "need n > m");
    let mut g = Network::new(Direction::Undirected);
    g.set_name(format!("powerlaw-{n}"));

    for i in 0..n {
        let id = g.add_node(format!("r{i}"));
        g.set_node_attr(
            id,
            "region",
            if i < params.hot_nodes { "hot" } else { "bulk" },
        );
        g.set_node_attr(id, "cpu", rng.random_range(1..=32) as f64);
    }

    let wire = |g: &mut Network, u: NodeId, v: NodeId, rng: &mut StdRng| {
        let e = g.add_edge(u, v);
        // Heavy-tailed bandwidth: most links thin, a few fat.
        let bw = 1.0 / (1.0 - rng.random_range(0.0..0.99f64));
        g.set_edge_attr(e, "bw", bw);
        g.set_edge_attr(e, "delay", rng.random_range(0.1..5.0));
    };

    // Seed: a path over the first m+1 nodes (connected, minimal).
    let mut targets: Vec<u32> = Vec::with_capacity(2 * n * m);
    for i in 0..m {
        wire(&mut g, NodeId(i as u32), NodeId(i as u32 + 1), rng);
        targets.push(i as u32);
        targets.push(i as u32 + 1);
    }
    // Growth: each new node attaches `m` links to endpoints sampled
    // from the repeated-endpoint list (degree-proportional).
    for i in (m + 1)..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = targets[rng.random_range(0..targets.len())];
            if t as usize != i && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            wire(&mut g, NodeId(i as u32), NodeId(t), rng);
            targets.push(i as u32);
            targets.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn fat_tree_counts_match_formula() {
        let params = FatTreeParams::classic(4);
        let g = fat_tree(&params, &mut rng(1));
        assert_eq!(g.node_count(), params.node_count());
        // k=4: 4 core + 8 agg + 8 edge + 16 hosts.
        assert_eq!(g.node_count(), 36);
        // Links: core↔agg k·(k/2)·(k/2)=16, agg↔edge k·(k/2)·(k/2)=16,
        // edge↔host 16.
        assert_eq!(g.edge_count(), 48);
    }

    #[test]
    fn fat_tree_is_deterministic() {
        let params = FatTreeParams {
            k: 4,
            hosts_per_edge: 2,
        };
        let a = fat_tree(&params, &mut rng(7));
        let b = fat_tree(&params, &mut rng(7));
        assert_eq!(g_digest(&a), g_digest(&b));
    }

    #[test]
    fn power_law_connected_hot_region() {
        let params = PowerLawParams {
            n: 500,
            m: 2,
            hot_nodes: 32,
        };
        let g = power_law(&params, &mut rng(3));
        assert_eq!(g.node_count(), 500);
        // Every node past the seed contributes exactly m edges.
        assert_eq!(g.edge_count(), 2 + (500 - 3) * 2);
        // The hot cluster is connected: every hot node (past node 0)
        // has a neighbor with a smaller id, which by induction links
        // the whole prefix.
        let region = g.schema().get("region").unwrap();
        for v in g.node_ids().take(32) {
            assert_eq!(g.node_attr(v, region).and_then(|a| a.as_str()), Some("hot"));
            if v.index() == 0 {
                continue;
            }
            assert!(
                g.neighbors(v).iter().any(|(w, _)| w.index() < v.index()),
                "hot node {v:?} must attach to an earlier node"
            );
        }
    }

    fn g_digest(g: &Network) -> (usize, usize, Vec<(u32, u32)>) {
        (
            g.node_count(),
            g.edge_count(),
            g.edge_refs().map(|e| (e.src.0, e.dst.0)).collect(),
        )
    }
}

//! GT-ITM-style transit-stub hierarchical topologies.
//!
//! §VI-A cites GT-ITM \[19\] among the topology sources NETEMBED must
//! interoperate with. The transit-stub model builds an Internet-like
//! two-level structure: a small connected *transit* core whose routers
//! each anchor several *stub* domains (random connected subnetworks).
//! Transit links carry wide-area delays; stub links carry LAN-scale
//! delays; stub→transit uplinks sit in between. The result is sparser and
//! more tree-like than the PlanetLab mesh, giving the experiments a third
//! host-topology regime.

use netgraph::{Direction, Network, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// Transit-stub parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransitStubParams {
    /// Number of transit routers (core size).
    pub transit: usize,
    /// Stub domains attached to each transit router.
    pub stubs_per_transit: usize,
    /// Nodes per stub domain.
    pub stub_size: usize,
    /// Probability of an extra intra-stub edge beyond the spanning path.
    pub stub_extra_edge_prob: f64,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit: 4,
            stubs_per_transit: 3,
            stub_size: 8,
            stub_extra_edge_prob: 0.3,
        }
    }
}

impl TransitStubParams {
    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.transit + self.transit * self.stubs_per_transit * self.stub_size
    }
}

/// Generate a transit-stub network.
///
/// Node attributes: `tier` (`"transit"` or `"stub"`), `domain` (numeric
/// stub-domain id, −1 for transit). Edge attributes: `minDelay`,
/// `avgDelay`, `maxDelay` (transit 20–80 ms, uplink 5–20 ms, stub 0.5–5 ms)
/// and `tier` (`0` transit, `1` uplink, `2` stub).
pub fn transit_stub(params: &TransitStubParams, rng: &mut StdRng) -> Network {
    assert!(params.transit >= 1 && params.stub_size >= 1);
    let mut g = Network::new(Direction::Undirected);
    g.set_name(format!(
        "transit-stub-{}x{}x{}",
        params.transit, params.stubs_per_transit, params.stub_size
    ));

    let delay_edge =
        |g: &mut Network, u: NodeId, v: NodeId, lo: f64, hi: f64, tier: f64, rng: &mut StdRng| {
            let avg = rng.random_range(lo..hi);
            let e = g.add_edge(u, v);
            g.set_edge_attr(e, "avgDelay", avg);
            g.set_edge_attr(e, "minDelay", avg * rng.random_range(0.85..0.98));
            g.set_edge_attr(e, "maxDelay", avg * rng.random_range(1.02..1.3));
            g.set_edge_attr(e, "tier", tier);
        };

    // Transit core: a ring plus random chords (connected, redundant).
    let transit: Vec<NodeId> = (0..params.transit)
        .map(|i| {
            let n = g.add_node(format!("t{i}"));
            g.set_node_attr(n, "tier", "transit");
            g.set_node_attr(n, "domain", -1.0);
            n
        })
        .collect();
    if params.transit > 1 {
        for i in 0..params.transit {
            let j = (i + 1) % params.transit;
            if !g.has_edge(transit[i], transit[j]) {
                delay_edge(&mut g, transit[i], transit[j], 20.0, 80.0, 0.0, rng);
            }
        }
        for i in 0..params.transit {
            for j in (i + 2)..params.transit {
                if !g.has_edge(transit[i], transit[j]) && rng.random_bool(0.25) {
                    delay_edge(&mut g, transit[i], transit[j], 20.0, 80.0, 0.0, rng);
                }
            }
        }
    }

    // Stub domains.
    let mut domain = 0.0f64;
    for &t in &transit {
        for _s in 0..params.stubs_per_transit {
            let members: Vec<NodeId> = (0..params.stub_size)
                .map(|k| {
                    let n = g.add_node(format!("d{}n{k}", domain as i64));
                    g.set_node_attr(n, "tier", "stub");
                    g.set_node_attr(n, "domain", domain);
                    n
                })
                .collect();
            // Spanning path keeps the stub connected.
            for w in members.windows(2) {
                delay_edge(&mut g, w[0], w[1], 0.5, 5.0, 2.0, rng);
            }
            // Extra LAN edges.
            for i in 0..members.len() {
                for j in (i + 2)..members.len() {
                    if rng.random_bool(params.stub_extra_edge_prob.clamp(0.0, 1.0)) {
                        delay_edge(&mut g, members[i], members[j], 0.5, 5.0, 2.0, rng);
                    }
                }
            }
            // Uplink: the stub's first node to its transit router.
            delay_edge(&mut g, members[0], t, 5.0, 20.0, 1.0, rng);
            domain += 1.0;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use netgraph::{algo, AttrValue};

    #[test]
    fn structure_and_connectivity() {
        let p = TransitStubParams::default();
        let g = transit_stub(&p, &mut rng(1));
        assert_eq!(g.node_count(), p.node_count());
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn tiers_have_disjoint_delay_scales() {
        let g = transit_stub(&TransitStubParams::default(), &mut rng(2));
        for e in g.edge_refs() {
            let tier = g
                .edge_attr_by_name(e.id, "tier")
                .and_then(AttrValue::as_num)
                .unwrap();
            let avg = g
                .edge_attr_by_name(e.id, "avgDelay")
                .and_then(AttrValue::as_num)
                .unwrap();
            match tier as i64 {
                0 => assert!((20.0..80.0).contains(&avg), "transit delay {avg}"),
                1 => assert!((5.0..20.0).contains(&avg), "uplink delay {avg}"),
                2 => assert!((0.5..5.0).contains(&avg), "stub delay {avg}"),
                other => panic!("unexpected tier {other}"),
            }
        }
    }

    #[test]
    fn domains_are_labelled() {
        let p = TransitStubParams {
            transit: 2,
            stubs_per_transit: 2,
            stub_size: 3,
            stub_extra_edge_prob: 0.0,
        };
        let g = transit_stub(&p, &mut rng(3));
        let mut domains = std::collections::BTreeSet::new();
        let mut transit_count = 0;
        for v in g.node_ids() {
            let d = g
                .node_attr_by_name(v, "domain")
                .and_then(AttrValue::as_num)
                .unwrap();
            if d < 0.0 {
                transit_count += 1;
            } else {
                domains.insert(d as i64);
            }
        }
        assert_eq!(transit_count, 2);
        assert_eq!(domains.len(), 4);
    }

    #[test]
    fn single_transit_degenerate_case() {
        let p = TransitStubParams {
            transit: 1,
            stubs_per_transit: 2,
            stub_size: 2,
            stub_extra_edge_prob: 0.5,
        };
        let g = transit_stub(&p, &mut rng(4));
        assert!(algo::is_connected(&g));
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TransitStubParams::default();
        let a = transit_stub(&p, &mut rng(9));
        let b = transit_stub(&p, &mut rng(9));
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn usable_as_embedding_host() {
        // Sanity: subgraph queries sampled from a transit-stub host embed.
        let g = transit_stub(&TransitStubParams::default(), &mut rng(10));
        let wl = crate::workload::subgraph_query(
            &g,
            &crate::workload::SubgraphParams {
                n: 6,
                edge_keep: 1.0,
                slack: 0.05,
            },
            &mut rng(11),
        );
        assert!(netgraph::algo::is_connected(&wl.query));
        assert!(wl.ground_truth.is_some());
    }
}

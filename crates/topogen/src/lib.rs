//! # topogen — topology and workload generation for NETEMBED
//!
//! The paper's evaluation (§VII-A) draws hosting networks from two sources
//! — the PlanetLab all-pairs ping trace and the BRITE topology generator —
//! and builds query networks three ways: random connected subgraphs of the
//! host, regular topologies (cliques, rings, stars), and synthetic
//! irregular topologies. Neither the trace nor BRITE itself can be bundled,
//! so this crate regenerates statistically equivalent inputs from scratch:
//!
//! * [`planetlab`] — a synthetic all-pairs delay mesh with the trace's
//!   shape: 296 sites, ≈29k edges (a near-clique), heavy-tailed RTTs with
//!   per-edge `minDelay`/`avgDelay`/`maxDelay`, geographic clustering.
//! * [`brite`] — BRITE's Barabási–Albert mode (incremental growth with
//!   preferential attachment, giving E ≈ m·N like the paper's
//!   N=1500/E=3030) plus a Waxman mode.
//! * [`datacenter`] — fat-tree/Clos fabrics and power-law graphs at
//!   10⁴–10⁶ nodes, the demo substrates for the multilevel hierarchy.
//! * [`regular`] — rings, stars, cliques, lines, trees, grids.
//! * [`composite`] — the paper's two-level hierarchical queries (§VII-D).
//! * [`workload`] — query samplers and constraint synthesis: random
//!   connected subgraph queries with delay windows (feasible by
//!   construction), infeasible variants, and clique queries.
//!
//! All generators are deterministic given a seed.

pub mod brite;
pub mod composite;
pub mod datacenter;
pub mod hierarchical;
pub mod planetlab;
pub mod regular;
pub mod workload;

pub use brite::{brite_like, BriteMode, BriteParams};
pub use composite::{composite_query, CompositeSpec, Level};
pub use datacenter::{fat_tree, power_law, FatTreeParams, PowerLawParams};
pub use hierarchical::{transit_stub, TransitStubParams};
pub use planetlab::{planetlab_like, PlanetlabParams};
pub use regular::{clique, grid, line, ring, star, tree};
pub use workload::{
    assign_composite_windows, assign_random_windows, clique_query, make_infeasible, subgraph_query,
    QueryWorkload, SubgraphParams, CLIQUE_CONSTRAINT, SUBGRAPH_CONSTRAINT,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG from a 64-bit seed — every generator entry point takes
/// a seed rather than an `Rng` so experiment scripts stay reproducible.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

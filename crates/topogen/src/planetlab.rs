//! Synthetic PlanetLab-like all-pairs delay mesh.
//!
//! The paper's PlanetLab host network comes from the all-pairs ping trace
//! \[21\]: 296 sites, 28,996 measured edges (≈66% of all pairs — "the
//! underlying graph is not a clique" because some daemons were down), and
//! per-edge minimum/average/maximum RTTs. The trace is no longer served, so
//! this module synthesizes a mesh with the same structural signature:
//!
//! * sites grouped into geographic clusters ("continents"), giving a
//!   bimodal RTT distribution: small intra-cluster delays (1–75 ms) and
//!   large inter-cluster delays (75–350 ms);
//! * a measured-pair probability < 1 so the graph is dense but not
//!   complete;
//! * `minDelay ≤ avgDelay ≤ maxDelay` with multiplicative jitter.
//!
//! The paper's three constraint windows depend on this distribution:
//! 10–100 ms must be matched by thousands of edges (§VII-D reports ≈6,700),
//! 25–175 ms must contain ≈70% of edges, and 1–75/75–350 must both be
//! abundant. `delay_fraction_in` lets tests assert those calibrations.

use netgraph::{AttrValue, Direction, Network};
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of the synthetic trace.
#[derive(Debug, Clone)]
pub struct PlanetlabParams {
    /// Number of sites (paper: 296).
    pub sites: usize,
    /// Probability that a site pair was measured (paper: 28996 edges of
    /// 43660 possible ⇒ ≈0.664).
    pub measured_prob: f64,
    /// Number of geographic clusters.
    pub clusters: usize,
}

impl Default for PlanetlabParams {
    fn default() -> Self {
        PlanetlabParams {
            sites: 296,
            measured_prob: 28_996.0 / (296.0 * 295.0 / 2.0),
            clusters: 6,
        }
    }
}

/// Generate the synthetic PlanetLab-like hosting network.
///
/// Node attributes: `cluster` (numeric cluster id), `cpu`, `mem`,
/// `osType`, and `name` is `"siteN"`. Edge attributes: `minDelay`,
/// `avgDelay`, `maxDelay` in milliseconds.
pub fn planetlab_like(params: &PlanetlabParams, rng: &mut StdRng) -> Network {
    let mut g = Network::new(Direction::Undirected);
    g.set_name(format!("planetlab-{}", params.sites));

    // Cluster centres on a ring of the "globe": pairwise inter-cluster
    // base delays of 60–280 ms, intra-cluster 2–40 ms.
    let clusters: Vec<usize> = (0..params.sites)
        .map(|_| rng.random_range(0..params.clusters))
        .collect();

    // Fixed per-cluster-pair base delay so the distribution is coherent.
    let k = params.clusters;
    let mut base = vec![vec![0.0f64; k]; k];
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        for j in i..k {
            let d = if i == j {
                rng.random_range(4.0..20.0)
            } else {
                // Ring distance drives the base inter-cluster RTT.
                // Calibrated so that ≈70% of all links fall in the
                // 25–175 ms window and ≈25% in 10–100 ms, matching the
                // fractions the paper quotes for its constraint windows.
                let ring = (j - i).min(k - (j - i)) as f64;
                65.0 + ring * 35.0 + rng.random_range(-10.0..10.0)
            };
            base[i][j] = d;
            base[j][i] = d;
        }
    }

    #[allow(clippy::needless_range_loop)]
    for i in 0..params.sites {
        let id = g.add_node(format!("site{i}"));
        g.set_node_attr(id, "cluster", clusters[i] as f64);
        g.set_node_attr(id, "cpu", rng.random_range(1..=8) as f64);
        g.set_node_attr(
            id,
            "mem",
            [512.0, 1024.0, 2048.0, 4096.0][rng.random_range(0..4)],
        );
        let os = ["linux-2.6", "linux-2.4", "freebsd-5"][rng.random_range(0..3)];
        g.set_node_attr(id, "osType", os);
    }

    for i in 0..params.sites {
        for j in (i + 1)..params.sites {
            if !rng.random_bool(params.measured_prob.clamp(0.0, 1.0)) {
                continue;
            }
            let b = base[clusters[i]][clusters[j]];
            // Per-pair spread around the cluster base plus jitter.
            let avg = (b * rng.random_range(0.75..1.35)).max(1.0);
            let min = avg * rng.random_range(0.85..0.98);
            let max = avg * rng.random_range(1.02..1.45);
            let e = g.add_edge(netgraph::NodeId(i as u32), netgraph::NodeId(j as u32));
            g.set_edge_attr(e, "minDelay", min);
            g.set_edge_attr(e, "avgDelay", avg);
            g.set_edge_attr(e, "maxDelay", max);
        }
    }
    g
}

/// Fraction of edges whose `avgDelay` lies within `[lo, hi]` — used to
/// calibrate the synthetic trace against the edge counts the paper quotes
/// for its constraint windows.
pub fn delay_fraction_in(net: &Network, lo: f64, hi: f64) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for e in net.edge_refs() {
        if let Some(d) = net
            .edge_attr_by_name(e.id, "avgDelay")
            .and_then(AttrValue::as_num)
        {
            total += 1;
            if d >= lo && d <= hi {
                hits += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use netgraph::algo;

    #[test]
    fn shape_matches_trace() {
        let g = planetlab_like(&PlanetlabParams::default(), &mut rng(1));
        assert_eq!(g.node_count(), 296);
        // ≈ 0.664 of 43,660 pairs: allow sampling noise.
        let e = g.edge_count();
        assert!(
            (28_000..=30_000).contains(&e),
            "edge count {e} far from the trace's 28,996"
        );
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn delay_windows_are_populated_like_the_paper() {
        let g = planetlab_like(&PlanetlabParams::default(), &mut rng(2));
        // §VII-D: about 6,700 edges in 10–100 ms on 28,996 → ≈23%.
        let f_10_100 = delay_fraction_in(&g, 10.0, 100.0);
        assert!(
            (0.10..=0.45).contains(&f_10_100),
            "10-100ms fraction {f_10_100}"
        );
        // §VII-D: 25–175 ms contains about 70% of links.
        let f_25_175 = delay_fraction_in(&g, 25.0, 175.0);
        assert!(
            (0.5..=0.85).contains(&f_25_175),
            "25-175ms fraction {f_25_175}"
        );
        // Both composite ranges must be abundant.
        assert!(delay_fraction_in(&g, 1.0, 75.0) > 0.1);
        assert!(delay_fraction_in(&g, 75.0, 350.0) > 0.3);
    }

    #[test]
    fn delays_ordered() {
        let g = planetlab_like(&PlanetlabParams::default(), &mut rng(3));
        for e in g.edge_refs() {
            let get = |n: &str| {
                g.edge_attr_by_name(e.id, n)
                    .and_then(AttrValue::as_num)
                    .unwrap()
            };
            assert!(get("minDelay") <= get("avgDelay"));
            assert!(get("avgDelay") <= get("maxDelay"));
            assert!(get("minDelay") > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = planetlab_like(&PlanetlabParams::default(), &mut rng(5));
        let b = planetlab_like(&PlanetlabParams::default(), &mut rng(5));
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn small_instance_for_tests() {
        let p = PlanetlabParams {
            sites: 40,
            measured_prob: 0.8,
            clusters: 3,
        };
        let g = planetlab_like(&p, &mut rng(6));
        assert_eq!(g.node_count(), 40);
        assert!(algo::is_connected(&g));
    }
}

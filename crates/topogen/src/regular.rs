//! Regular query topologies: rings, stars, cliques, lines, trees, grids.
//!
//! The paper uses regular topologies as worst-case queries (§VII-D): with
//! uniform constraints, every permutation of a partial match is also a
//! partial match, so the search cannot exploit asymmetry. These builders
//! produce bare topologies; attribute assignment is the caller's job (see
//! [`crate::workload`]).

use netgraph::{Direction, Network, NodeId};

/// A cycle of `n ≥ 3` nodes.
pub fn ring(n: usize) -> Network {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = named(format!("ring-{n}"), n);
    for i in 0..n {
        g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
    }
    g
}

/// A star: node 0 is the hub, nodes `1..n` are leaves. `n ≥ 2`.
pub fn star(n: usize) -> Network {
    assert!(n >= 2, "a star needs at least 2 nodes");
    let mut g = named(format!("star-{n}"), n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32));
    }
    g
}

/// A complete graph on `n ≥ 2` nodes.
pub fn clique(n: usize) -> Network {
    assert!(n >= 2, "a clique needs at least 2 nodes");
    let mut g = named(format!("clique-{n}"), n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }
    g
}

/// A path of `n ≥ 2` nodes.
pub fn line(n: usize) -> Network {
    assert!(n >= 2, "a line needs at least 2 nodes");
    let mut g = named(format!("line-{n}"), n);
    for i in 0..n - 1 {
        g.add_edge(NodeId(i as u32), NodeId((i + 1) as u32));
    }
    g
}

/// A complete `arity`-ary tree with `depth` levels below the root
/// (`depth = 0` is a single node).
pub fn tree(arity: usize, depth: usize) -> Network {
    assert!(arity >= 1, "tree arity must be at least 1");
    let n = if arity == 1 {
        depth + 1
    } else {
        (arity.pow(depth as u32 + 1) - 1) / (arity - 1)
    };
    let mut g = named(format!("tree-{arity}x{depth}"), n);
    // Children of node i are a·i+1 ... a·i+a (heap layout).
    for i in 0..n {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < n {
                g.add_edge(NodeId(i as u32), NodeId(child as u32));
            }
        }
    }
    g
}

/// A `w × h` grid (4-neighborhood).
pub fn grid(w: usize, h: usize) -> Network {
    assert!(
        w >= 1 && h >= 1 && w * h >= 2,
        "grid needs at least 2 nodes"
    );
    let mut g = named(format!("grid-{w}x{h}"), w * h);
    let at = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(at(x, y), at(x + 1, y));
            }
            if y + 1 < h {
                g.add_edge(at(x, y), at(x, y + 1));
            }
        }
    }
    g
}

fn named(name: String, n: usize) -> Network {
    let mut g = Network::new(Direction::Undirected);
    g.set_name(name);
    for i in 0..n {
        g.add_node(format!("q{i}"));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{algo, metrics};

    #[test]
    fn ring_shape() {
        let g = ring(8);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
        assert!(g.node_ids().all(|v| g.degree(v) == 2));
        assert!(algo::is_connected(&g));
        assert_eq!(metrics::diameter(&g), Some(4));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(NodeId(0)), 5);
        assert!((1..6).all(|i| g.degree(NodeId(i)) == 1));
    }

    #[test]
    fn clique_shape() {
        let g = clique(5);
        assert_eq!(g.edge_count(), 10);
        assert!((metrics::density(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(metrics::diameter(&g), Some(4));
    }

    #[test]
    fn tree_shapes() {
        let g = tree(2, 3); // 15 nodes
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(algo::is_connected(&g));
        let unary = tree(1, 4); // a path of 5
        assert_eq!(unary.node_count(), 5);
        assert_eq!(unary.edge_count(), 4);
        let single = tree(3, 0);
        assert_eq!(single.node_count(), 1);
        assert_eq!(single.edge_count(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // Edges: h*(w-1) + w*(h-1) = 4*2 + 3*3 = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(algo::is_connected(&g));
        assert_eq!(metrics::diameter(&g), Some(5)); // (3-1)+(4-1)
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        ring(2);
    }
}

//! Query workload synthesis: the three query-generation approaches of
//! §VII-A plus the feasible/infeasible derivation of §VII-B.
//!
//! ## Conventions
//!
//! Query edges carry a requested delay window as `dmin`/`dmax` attributes.
//! Two standard constraint expressions relate them to host edges:
//!
//! * [`SUBGRAPH_CONSTRAINT`] — "the real link delay range is within the
//!   specified query-link delay range" (§VII-B):
//!   `rEdge.minDelay >= vEdge.dmin && rEdge.maxDelay <= vEdge.dmax`.
//! * [`CLIQUE_CONSTRAINT`] — "end-to-end delay between 10 and 100 ms"
//!   (§VII-D): `rEdge.avgDelay >= vEdge.dmin && rEdge.avgDelay <= vEdge.dmax`.

use netgraph::{AttrValue, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Constraint for subgraph-sampled queries: the host link's measured delay
/// range must lie within the query link's requested window.
pub const SUBGRAPH_CONSTRAINT: &str =
    "rEdge.minDelay >= vEdge.dmin && rEdge.maxDelay <= vEdge.dmax";

/// Constraint for regular/clique/composite queries: the host link's average
/// delay must fall inside the requested window.
pub const CLIQUE_CONSTRAINT: &str = "rEdge.avgDelay >= vEdge.dmin && rEdge.avgDelay <= vEdge.dmax";

/// A generated query plus everything needed to run and check it.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query (virtual) network with `dmin`/`dmax` edge attributes.
    pub query: Network,
    /// For each query node (by index), the host node it was sampled from.
    /// `None` for synthetic queries with no planted embedding.
    pub ground_truth: Option<Vec<NodeId>>,
    /// The constraint expression to use with this query.
    pub constraint: String,
}

/// Parameters for connected-subgraph query sampling.
#[derive(Debug, Clone, Copy)]
pub struct SubgraphParams {
    /// Number of query nodes.
    pub n: usize,
    /// Fraction of non-spanning-tree induced edges to keep in `[0, 1]`
    /// (the paper varies E per N; 1.0 keeps the full induced subgraph).
    pub edge_keep: f64,
    /// Slack applied to the sampled window: `dmin = minDelay·(1−slack)`,
    /// `dmax = maxDelay·(1+slack)`. Larger slack under-constrains the
    /// query (more candidate links per query link).
    pub slack: f64,
}

impl Default for SubgraphParams {
    fn default() -> Self {
        SubgraphParams {
            n: 20,
            edge_keep: 0.5,
            slack: 0.01,
        }
    }
}

/// Sample a random connected subgraph of `host` as a query (§VII-A,
/// approach 1). The query is feasible by construction: the identity
/// mapping onto the sampled nodes satisfies [`SUBGRAPH_CONSTRAINT`].
///
/// Panics if `host` has fewer than `params.n` nodes or the connected
/// component of the random start is too small.
pub fn subgraph_query(host: &Network, params: &SubgraphParams, rng: &mut StdRng) -> QueryWorkload {
    assert!(params.n >= 2, "query needs at least 2 nodes");
    assert!(
        host.node_count() >= params.n,
        "host smaller than requested query"
    );
    // Grow a connected node set from a random start by repeatedly picking
    // a random frontier node.
    let mut chosen: Vec<NodeId> = Vec::with_capacity(params.n);
    let mut in_set = vec![false; host.node_count()];
    let mut frontier: Vec<NodeId> = Vec::new();
    let start = NodeId(rng.random_range(0..host.node_count() as u32));
    chosen.push(start);
    in_set[start.index()] = true;
    for &(nb, _) in host.neighbors(start) {
        if !in_set[nb.index()] {
            frontier.push(nb);
        }
    }
    while chosen.len() < params.n {
        assert!(
            !frontier.is_empty(),
            "host component smaller than requested query size"
        );
        let i = rng.random_range(0..frontier.len());
        let v = frontier.swap_remove(i);
        if in_set[v.index()] {
            continue;
        }
        in_set[v.index()] = true;
        chosen.push(v);
        for &(nb, _) in host.neighbors(v) {
            if !in_set[nb.index()] {
                frontier.push(nb);
            }
        }
    }

    let (induced, origin) = host.induced_subgraph(&chosen);
    let query = thin_edges(&induced, params.edge_keep, rng);
    let query = attach_windows(&query, host, &origin, params.slack);
    QueryWorkload {
        query,
        ground_truth: Some(origin),
        constraint: SUBGRAPH_CONSTRAINT.to_string(),
    }
}

/// Keep a spanning tree plus `keep` fraction of the remaining edges.
fn thin_edges(g: &Network, keep: f64, rng: &mut StdRng) -> Network {
    if keep >= 1.0 {
        return g.clone();
    }
    // Build a BFS spanning tree edge set.
    let order = netgraph::algo::bfs_order(g, NodeId(0));
    let mut in_tree = vec![false; g.edge_count()];
    let mut visited = vec![false; g.node_count()];
    visited[0] = true;
    for &u in &order {
        for &(v, e) in g.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                in_tree[e.index()] = true;
            }
        }
    }
    let mut out = Network::new(g.direction());
    out.set_name(g.name().to_string());
    for v in g.node_ids() {
        let nv = out.add_node(g.node_name(v).to_string());
        for (aid, val) in g.node_attrs(v) {
            let name = g.schema().name(aid).to_string();
            out.set_node_attr(nv, &name, val.clone());
        }
    }
    for e in g.edge_refs() {
        if in_tree[e.id.index()] || rng.random_bool(keep.clamp(0.0, 1.0)) {
            let ne = out.add_edge(e.src, e.dst);
            for (aid, val) in g.edge_attrs(e.id) {
                let name = g.schema().name(aid).to_string();
                out.set_edge_attr(ne, &name, val.clone());
            }
        }
    }
    out
}

/// For every query edge, set `dmin`/`dmax` from the corresponding host
/// edge's measured range, widened by `slack`.
fn attach_windows(query: &Network, host: &Network, origin: &[NodeId], slack: f64) -> Network {
    let mut q = query.clone();
    for e in query.edge_refs() {
        let hu = origin[e.src.index()];
        let hv = origin[e.dst.index()];
        let he = host
            .find_edge(hu, hv)
            .expect("query edge sampled from host edge");
        let min = host
            .edge_attr_by_name(he, "minDelay")
            .and_then(AttrValue::as_num)
            .unwrap_or(1.0);
        let max = host
            .edge_attr_by_name(he, "maxDelay")
            .and_then(AttrValue::as_num)
            .unwrap_or(min);
        q.set_edge_attr(e.id, "dmin", min * (1.0 - slack));
        q.set_edge_attr(e.id, "dmax", max * (1.0 + slack));
    }
    q
}

/// Derive an infeasible query from a feasible one (§VII-B): perturb the
/// delay windows of `fraction` of the edges (at least one) to values no
/// host link can satisfy. Topology is unchanged.
pub fn make_infeasible(workload: &QueryWorkload, fraction: f64, rng: &mut StdRng) -> QueryWorkload {
    let mut q = workload.query.clone();
    let mut edges: Vec<netgraph::EdgeId> = q.edge_refs().map(|e| e.id).collect();
    edges.shuffle(rng);
    let k = ((edges.len() as f64 * fraction).ceil() as usize).clamp(1, edges.len());
    for &e in edges.iter().take(k) {
        // An empty window far above any measured delay: nothing matches.
        q.set_edge_attr(e, "dmin", 1.0e7);
        q.set_edge_attr(e, "dmax", 1.0e7 + 1.0);
    }
    QueryWorkload {
        query: q,
        ground_truth: None,
        constraint: workload.constraint.clone(),
    }
}

/// Clique query of `k` nodes whose edges all request an `avgDelay` in
/// `[lo, hi]` (§VII-D uses 10–100 ms). Use with [`CLIQUE_CONSTRAINT`].
pub fn clique_query(k: usize, lo: f64, hi: f64) -> QueryWorkload {
    let mut q = crate::regular::clique(k);
    for e in q.edge_refs().collect::<Vec<_>>() {
        q.set_edge_attr(e.id, "dmin", lo);
        q.set_edge_attr(e.id, "dmax", hi);
    }
    QueryWorkload {
        query: q,
        ground_truth: None,
        constraint: CLIQUE_CONSTRAINT.to_string(),
    }
}

/// Assign per-tier delay windows to a composite query (§VII-D, "regular
/// constraints"): root-tier edges get `[root_lo, root_hi]`, leaf-tier edges
/// get `[leaf_lo, leaf_hi]`.
pub fn assign_composite_windows(
    query: &mut Network,
    (root_lo, root_hi): (f64, f64),
    (leaf_lo, leaf_hi): (f64, f64),
) {
    for e in query.edge_refs().collect::<Vec<_>>() {
        let tier = query
            .edge_attr_by_name(e.id, "tier")
            .and_then(AttrValue::as_num)
            .unwrap_or(0.0);
        let (lo, hi) = if tier == 0.0 {
            (root_lo, root_hi)
        } else {
            (leaf_lo, leaf_hi)
        };
        query.set_edge_attr(e.id, "dmin", lo);
        query.set_edge_attr(e.id, "dmax", hi);
    }
}

/// Assign random delay windows (§VII-D, "irregular constraints"): each edge
/// gets a window of width `width` whose centre is drawn uniformly from
/// `[lo + width/2, hi − width/2]`.
pub fn assign_random_windows(query: &mut Network, lo: f64, hi: f64, width: f64, rng: &mut StdRng) {
    assert!(hi - lo >= width, "range narrower than window width");
    for e in query.edge_refs().collect::<Vec<_>>() {
        let centre = rng.random_range((lo + width / 2.0)..=(hi - width / 2.0));
        query.set_edge_attr(e.id, "dmin", centre - width / 2.0);
        query.set_edge_attr(e.id, "dmax", centre + width / 2.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planetlab::{planetlab_like, PlanetlabParams};
    use crate::rng;
    use netgraph::algo;

    fn small_host(seed: u64) -> Network {
        planetlab_like(
            &PlanetlabParams {
                sites: 60,
                measured_prob: 0.7,
                clusters: 3,
            },
            &mut rng(seed),
        )
    }

    #[test]
    fn subgraph_query_is_connected_and_grounded() {
        let host = small_host(11);
        let wl = subgraph_query(
            &host,
            &SubgraphParams {
                n: 12,
                edge_keep: 0.5,
                slack: 0.01,
            },
            &mut rng(12),
        );
        assert_eq!(wl.query.node_count(), 12);
        assert!(algo::is_connected(&wl.query));
        let gt = wl.ground_truth.as_ref().unwrap();
        assert_eq!(gt.len(), 12);
        // Ground truth satisfies the window on every query edge.
        for e in wl.query.edge_refs() {
            let (hu, hv) = (gt[e.src.index()], gt[e.dst.index()]);
            let he = host.find_edge(hu, hv).expect("host edge exists");
            let hmin = host
                .edge_attr_by_name(he, "minDelay")
                .and_then(AttrValue::as_num)
                .unwrap();
            let hmax = host
                .edge_attr_by_name(he, "maxDelay")
                .and_then(AttrValue::as_num)
                .unwrap();
            let dmin = wl
                .query
                .edge_attr_by_name(e.id, "dmin")
                .and_then(AttrValue::as_num)
                .unwrap();
            let dmax = wl
                .query
                .edge_attr_by_name(e.id, "dmax")
                .and_then(AttrValue::as_num)
                .unwrap();
            assert!(dmin <= hmin && hmax <= dmax);
        }
    }

    #[test]
    fn edge_keep_thins_edges_but_keeps_connectivity() {
        let host = small_host(13);
        let full = subgraph_query(
            &host,
            &SubgraphParams {
                n: 15,
                edge_keep: 1.0,
                slack: 0.01,
            },
            &mut rng(14),
        );
        let thin = subgraph_query(
            &host,
            &SubgraphParams {
                n: 15,
                edge_keep: 0.0,
                slack: 0.01,
            },
            &mut rng(14),
        );
        assert!(thin.query.edge_count() <= full.query.edge_count());
        // keep=0 leaves exactly a spanning tree.
        assert_eq!(thin.query.edge_count(), 14);
        assert!(algo::is_connected(&thin.query));
    }

    #[test]
    fn infeasible_keeps_topology() {
        let host = small_host(15);
        let wl = subgraph_query(&host, &SubgraphParams::default(), &mut rng(16));
        let bad = make_infeasible(&wl, 0.2, &mut rng(17));
        assert_eq!(bad.query.node_count(), wl.query.node_count());
        assert_eq!(bad.query.edge_count(), wl.query.edge_count());
        assert!(bad.ground_truth.is_none());
        // At least one edge got the impossible window.
        let poisoned = bad
            .query
            .edge_refs()
            .filter(|e| {
                bad.query
                    .edge_attr_by_name(e.id, "dmin")
                    .and_then(AttrValue::as_num)
                    .unwrap()
                    > 1e6
            })
            .count();
        assert!(poisoned >= 1);
    }

    #[test]
    fn clique_query_windows() {
        let wl = clique_query(5, 10.0, 100.0);
        assert_eq!(wl.query.node_count(), 5);
        assert_eq!(wl.query.edge_count(), 10);
        for e in wl.query.edge_refs() {
            assert_eq!(
                wl.query
                    .edge_attr_by_name(e.id, "dmin")
                    .and_then(AttrValue::as_num),
                Some(10.0)
            );
        }
        assert_eq!(wl.constraint, CLIQUE_CONSTRAINT);
    }

    #[test]
    fn composite_window_assignment() {
        use crate::composite::{composite_query, CompositeSpec, Level};
        let mut q = composite_query(&CompositeSpec {
            root: Level::Ring,
            groups: 3,
            leaf: Level::Star,
            group_size: 3,
        });
        assign_composite_windows(&mut q, (75.0, 350.0), (1.0, 75.0));
        for e in q.edge_refs() {
            let tier = q
                .edge_attr_by_name(e.id, "tier")
                .and_then(AttrValue::as_num)
                .unwrap();
            let dmin = q
                .edge_attr_by_name(e.id, "dmin")
                .and_then(AttrValue::as_num)
                .unwrap();
            if tier == 0.0 {
                assert_eq!(dmin, 75.0);
            } else {
                assert_eq!(dmin, 1.0);
            }
        }
    }

    #[test]
    fn random_window_assignment_in_range() {
        let mut q = crate::regular::ring(6);
        assign_random_windows(&mut q, 25.0, 175.0, 50.0, &mut rng(18));
        for e in q.edge_refs() {
            let dmin = q
                .edge_attr_by_name(e.id, "dmin")
                .and_then(AttrValue::as_num)
                .unwrap();
            let dmax = q
                .edge_attr_by_name(e.id, "dmax")
                .and_then(AttrValue::as_num)
                .unwrap();
            assert!(dmin >= 25.0 - 1e-9);
            assert!(dmax <= 175.0 + 1e-9);
            assert!((dmax - dmin - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subgraph_sampling_deterministic() {
        let host = small_host(19);
        let a = subgraph_query(&host, &SubgraphParams::default(), &mut rng(20));
        let b = subgraph_query(&host, &SubgraphParams::default(), &mut rng(20));
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.query.edge_count(), b.query.edge_count());
    }
}

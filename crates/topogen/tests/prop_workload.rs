//! Property tests for workload generation: planted queries are always
//! connected, window-consistent with their ground truth, and generators
//! respect their structural contracts.

use netgraph::{algo, AttrValue};
use proptest::prelude::*;
use topogen::{
    brite_like, make_infeasible, planetlab_like, subgraph_query, BriteParams, PlanetlabParams,
    SubgraphParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planted_queries_are_connected_and_window_consistent(
        seed in 0u64..10_000,
        n in 3usize..14,
        keep in 0.0f64..1.0,
    ) {
        let host = planetlab_like(
            &PlanetlabParams { sites: 30, measured_prob: 0.7, clusters: 3 },
            &mut topogen::rng(seed),
        );
        let wl = subgraph_query(
            &host,
            &SubgraphParams { n, edge_keep: keep, slack: 0.02 },
            &mut topogen::rng(seed + 1),
        );
        prop_assert_eq!(wl.query.node_count(), n);
        prop_assert!(algo::is_connected(&wl.query));
        // Spanning tree lower bound, induced-subgraph upper bound.
        prop_assert!(wl.query.edge_count() >= n - 1);

        let gt = wl.ground_truth.as_ref().unwrap();
        // Ground truth nodes are distinct.
        let set: std::collections::HashSet<_> = gt.iter().collect();
        prop_assert_eq!(set.len(), n);
        // Every query edge's window contains its host edge's range.
        for e in wl.query.edge_refs() {
            let he = host.find_edge(gt[e.src.index()], gt[e.dst.index()]).unwrap();
            let get = |net: &netgraph::Network, id, name: &str| {
                net.edge_attr_by_name(id, name).and_then(AttrValue::as_num).unwrap()
            };
            prop_assert!(get(&wl.query, e.id, "dmin") <= get(&host, he, "minDelay"));
            prop_assert!(get(&wl.query, e.id, "dmax") >= get(&host, he, "maxDelay"));
        }
    }

    #[test]
    fn infeasible_variant_preserves_topology_and_poisons_windows(
        seed in 0u64..10_000,
        frac in 0.05f64..1.0,
    ) {
        let host = planetlab_like(
            &PlanetlabParams { sites: 25, measured_prob: 0.7, clusters: 3 },
            &mut topogen::rng(seed),
        );
        let wl = subgraph_query(
            &host,
            &SubgraphParams { n: 6, edge_keep: 0.5, slack: 0.02 },
            &mut topogen::rng(seed + 1),
        );
        let bad = make_infeasible(&wl, frac, &mut topogen::rng(seed + 2));
        prop_assert_eq!(bad.query.node_count(), wl.query.node_count());
        prop_assert_eq!(bad.query.edge_count(), wl.query.edge_count());
        for e in wl.query.edge_refs() {
            prop_assert!(bad.query.has_edge(e.src, e.dst));
        }
        let poisoned = bad
            .query
            .edge_refs()
            .filter(|e| {
                bad.query
                    .edge_attr_by_name(e.id, "dmin")
                    .and_then(AttrValue::as_num)
                    .unwrap()
                    > 1e6
            })
            .count();
        let expected = ((bad.query.edge_count() as f64 * frac).ceil() as usize)
            .min(bad.query.edge_count());
        prop_assert_eq!(poisoned, expected);
    }

    #[test]
    fn brite_ba_edge_count_formula(n in 10usize..200) {
        let g = brite_like(&BriteParams::paper_default(n), &mut topogen::rng(n as u64));
        // Seed clique C(3,2)=3 edges + 2 per additional node, minus any
        // shortfall when the attachment loop cannot find 2 distinct
        // targets (rare). Allow a small deficit.
        let expect = 3 + 2 * (n - 3);
        prop_assert!(g.edge_count() <= expect);
        prop_assert!(g.edge_count() + 4 >= expect, "edge deficit too large: {} vs {}", g.edge_count(), expect);
        prop_assert!(algo::is_connected(&g));
    }

    #[test]
    fn planetlab_connected_and_delay_ordered(seed in 0u64..5_000) {
        let g = planetlab_like(
            &PlanetlabParams { sites: 25, measured_prob: 0.6, clusters: 3 },
            &mut topogen::rng(seed),
        );
        prop_assert!(algo::is_connected(&g));
        for e in g.edge_refs() {
            let get = |name: &str| {
                g.edge_attr_by_name(e.id, name).and_then(AttrValue::as_num).unwrap()
            };
            prop_assert!(get("minDelay") <= get("avgDelay"));
            prop_assert!(get("avgDelay") <= get("maxDelay"));
            prop_assert!(get("minDelay") > 0.0);
        }
    }
}

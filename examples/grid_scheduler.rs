//! Grid-job scheduling with link→path embedding — the paper's §VIII
//! extensions working together.
//!
//! A shared compute infrastructure (transit-stub topology) runs jobs that
//! each need a small ring of workers with bounded pairwise delay and CPU
//! share, for a bounded duration. Two NETEMBED extensions come into play:
//!
//! 1. **Scheduling** (§VIII: "find a window of time in which some feasible
//!    embedding is available"): jobs that do not fit *now* get the
//!    earliest future window instead of a rejection.
//! 2. **Link→path mapping** (§VIII: "mapping a link in the query network
//!    to a path in the real network"): the sparse transit-stub fabric has
//!    no direct host link between most worker pairs, so virtual links ride
//!    over 1–3 hop host paths whose total delay fits the window.
//!
//! Run with: `cargo run -p harness --release --example grid_scheduler`

use netembed::pathmap::{check_path_mapping, search_paths, PathPolicy};
use netembed::{Deadline, Options};
use netgraph::{Direction, Network};
use service::Scheduler;
use topogen::{transit_stub, TransitStubParams};

fn worker_ring(workers: usize, cpu: f64, dmax: f64) -> Network {
    let mut q = Network::new(Direction::Undirected);
    let ids: Vec<_> = (0..workers)
        .map(|i| {
            let n = q.add_node(format!("w{i}"));
            q.set_node_attr(n, "cpu", cpu);
            n
        })
        .collect();
    for i in 0..workers {
        let e = q.add_edge(ids[i], ids[(i + 1) % workers]);
        q.set_edge_attr(e, "dmin", 0.0);
        q.set_edge_attr(e, "dmax", dmax);
    }
    q
}

fn main() {
    // The shared fabric: 3 transit routers, 2 stub domains each.
    let mut fabric = transit_stub(
        &TransitStubParams {
            transit: 3,
            stubs_per_transit: 2,
            stub_size: 5,
            stub_extra_edge_prob: 0.4,
        },
        &mut topogen::rng(33),
    );
    for n in fabric.node_ids().collect::<Vec<_>>() {
        fabric.set_node_attr(n, "cpu", 4.0);
    }
    println!(
        "fabric: {} nodes, {} links (transit-stub)",
        fabric.node_count(),
        fabric.edge_count()
    );

    // --- Part 1: schedule node-mapped jobs over time -------------------
    let mut scheduler = Scheduler::new(fabric.clone(), &["cpu"]);
    let job = worker_ring(4, 3.0, 12.0);
    let constraint = "rNode.cpu >= vNode.cpu && rEdge.avgDelay <= vEdge.dmax";

    println!("\nscheduling 6 identical 4-worker jobs (3 cpu each, 40 ticks):");
    for j in 0..6 {
        match scheduler.find_window(&job, constraint, 40, 0, 10_000, &Options::default()) {
            Ok(w) => println!(
                "  job {j}: window [{:4}, {:4})  workers: {}",
                w.start,
                w.end,
                w.mapping.display(&job, &fabric)
            ),
            Err(e) => println!("  job {j}: {e}"),
        }
    }

    // --- Part 2: a wide ring that only fits via multi-hop paths --------
    // Workers spread across stub domains: direct host links rarely exist,
    // so virtual links map onto host paths with aggregated delay ≤ 30ms.
    let wide = worker_ring(4, 0.0, 30.0);
    let policy = PathPolicy {
        max_hops: 3,
        ..PathPolicy::default()
    };
    let mut deadline = Deadline::new(Some(std::time::Duration::from_secs(5)));
    match search_paths(&wide, &fabric, &policy, None, 1, &mut deadline) {
        Ok((solutions, _)) if !solutions.is_empty() => {
            let pm = &solutions[0];
            check_path_mapping(&wide, &fabric, &policy, pm).expect("verified");
            println!("\nwide ring placed with link→path mapping:");
            for (q, r) in pm.nodes.iter() {
                println!("  {} -> {}", wide.node_name(q), fabric.node_name(r));
            }
            for (qe, path) in &pm.paths {
                let names: Vec<&str> = path.iter().map(|&n| fabric.node_name(n)).collect();
                let (s, d) = wide.edge_endpoints(*qe);
                println!(
                    "  link {}–{} rides host path: {}",
                    wide.node_name(s),
                    wide.node_name(d),
                    names.join(" → ")
                );
            }
        }
        Ok(_) => println!("\nno path-mapped placement within the hop bound"),
        Err(e) => println!("\npath mapping failed: {e}"),
    }
}

//! Multicast distribution tree over a PlanetLab-like overlay.
//!
//! §III's first motivating scenario: "a dynamic multicast service, where
//! an overlay distribution tree must be configured subject to a set of
//! constraints so that some QoS requirements are satisfied."
//!
//! We ask for a 2-level distribution tree (one source, fan-out relays,
//! leaf subscribers per relay) where source→relay links are wide-area
//! (75–350 ms) and relay→leaf links are regional (1–75 ms). If the strict
//! leaf budget is infeasible we relax it via the negotiation loop
//! (§VI-B's "begin with more stringent constraints and relax them").
//!
//! Run with: `cargo run -p harness --release --example multicast_tree`

use netembed::{Algorithm, Options, SearchMode};
use netgraph::{AttrValue, Direction, Network};
use service::{negotiate, NegotiationOutcome};
use topogen::{planetlab_like, PlanetlabParams};

fn main() {
    // Overlay model: a reduced PlanetLab-like all-pairs mesh.
    let host = planetlab_like(
        &PlanetlabParams {
            sites: 80,
            measured_prob: 0.7,
            clusters: 4,
        },
        &mut topogen::rng(7),
    );
    println!(
        "overlay: {} sites, {} measured pairs",
        host.node_count(),
        host.edge_count()
    );

    // Distribution tree: source → 3 relays → 3 leaves each.
    let mut tree = Network::new(Direction::Undirected);
    let source = tree.add_node("source");
    for r in 0..3 {
        let relay = tree.add_node(format!("relay{r}"));
        let e = tree.add_edge(source, relay);
        tree.set_edge_attr(e, "tier", 0.0); // wide-area hop
        for l in 0..3 {
            let leaf = tree.add_node(format!("leaf{r}-{l}"));
            let e = tree.add_edge(relay, leaf);
            tree.set_edge_attr(e, "tier", 1.0); // regional hop
        }
    }
    println!(
        "requested tree: {} nodes, {} links\n",
        tree.node_count(),
        tree.edge_count()
    );

    // Constraint template: wide-area window fixed, leaf budget `b` is the
    // negotiation lever.
    let template = |leaf_budget: f64| {
        format!(
            "(vEdge.tier == 0.0 && rEdge.avgDelay >= 75.0 && rEdge.avgDelay <= 350.0) || \
             (vEdge.tier == 1.0 && rEdge.avgDelay <= {leaf_budget})"
        )
    };

    let options = Options {
        algorithm: Algorithm::Lns, // regular structure: LNS finds first match fast (§VII-D)
        mode: SearchMode::First,
        timeout: Some(std::time::Duration::from_secs(5)),
        ..Options::default()
    };

    // Try leaf budgets from aggressive to generous.
    let budgets = [5.0, 10.0, 20.0, 40.0, 75.0];
    match negotiate(&host, &tree, &budgets, &options, template).expect("valid constraints") {
        NegotiationOutcome::Satisfied {
            level, mappings, ..
        } => {
            println!("satisfied with leaf delay budget {level} ms");
            let m = &mappings[0];
            println!("tree placement:");
            for (q, r) in m.iter() {
                let cluster = host
                    .node_attr_by_name(r, "cluster")
                    .and_then(AttrValue::as_num)
                    .unwrap_or(-1.0);
                println!(
                    "    {:9} -> {} (cluster {})",
                    tree.node_name(q),
                    host.node_name(r),
                    cluster as i64
                );
            }
        }
        NegotiationOutcome::Exhausted => {
            println!("no feasible tree even at the loosest budget — definitive answer");
        }
        NegotiationOutcome::Inconclusive { index } => {
            println!("timed out at budget index {index}; result unknown");
        }
    }
}

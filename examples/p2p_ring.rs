//! A DHT directory ring under network churn.
//!
//! §III's peer-to-peer scenario: the "directory nodes" of a distributed
//! hash table need bounded pairwise delays. We embed a delay-constrained
//! ring into a PlanetLab-like overlay, then let the monitoring simulator
//! drift the measured delays; every few epochs the application re-checks
//! its placement and re-embeds when the constraints no longer hold — the
//! "adjust the mapping dynamically, as the application needs change" loop.
//!
//! Run with: `cargo run -p harness --release --example p2p_ring`

use netembed::{Algorithm, Mapping, Options, Problem, SearchMode};
use netgraph::Network;
use service::{MonitorParams, MonitorSim, NetEmbedService, QueryRequest};
use topogen::{assign_random_windows, regular, PlanetlabParams};

fn ring_query() -> Network {
    let mut q = regular::ring(6);
    // Directory links should sit in the overlay's common delay band.
    assign_random_windows(&mut q, 25.0, 175.0, 120.0, &mut topogen::rng(3));
    q
}

fn main() {
    let svc = NetEmbedService::new();
    let host = topogen::planetlab_like(
        &PlanetlabParams {
            sites: 60,
            measured_prob: 0.75,
            clusters: 4,
        },
        &mut topogen::rng(21),
    );
    svc.registry().register("overlay", host);

    let ring = ring_query();
    let constraint = topogen::CLIQUE_CONSTRAINT; // avgDelay within window
    let options = Options {
        algorithm: Algorithm::Lns, // regular topology: LNS is the right tool (§VII-D)
        mode: SearchMode::First,
        timeout: Some(std::time::Duration::from_secs(3)),
        ..Options::default()
    };

    let mut monitor = MonitorSim::new(MonitorParams {
        delay_jitter: 0.25,
        flap_prob: 0.0,
        seed: 9,
    });

    let mut placement: Option<Mapping> = None;
    let mut re_embeddings = 0u32;

    for epoch in 0..12 {
        // Is the current placement still valid against the live model?
        let model = svc.registry().model("overlay").unwrap();
        let still_valid = placement.as_ref().is_some_and(|m| {
            let p = Problem::new(&ring, &model, constraint).expect("valid constraint");
            netembed::check_mapping(&p, m).is_ok()
        });

        if !still_valid {
            let resp = svc
                .submit(&QueryRequest {
                    host: "overlay".into(),
                    query: ring.clone(),
                    constraint: constraint.into(),
                    options: options.clone(),
                })
                .expect("well-formed query");
            match resp.mappings().first() {
                Some(m) => {
                    re_embeddings += 1;
                    println!(
                        "epoch {epoch:2}: re-embedded ring -> [{}]",
                        m.iter()
                            .map(|(_, r)| model.node_name(r).to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    placement = Some(m.clone());
                }
                None => {
                    println!("epoch {epoch:2}: no feasible ring under current delays");
                    placement = None;
                }
            }
        } else {
            println!("epoch {epoch:2}: placement still satisfies all delay windows");
        }

        // The network drifts.
        monitor.tick(svc.registry(), "overlay");
    }

    println!("\ntotal re-embeddings over 12 epochs: {re_embeddings}");
}

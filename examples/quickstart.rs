//! Quickstart: embed a constrained virtual network into a small host.
//!
//! Builds a 6-node hosting network with measured link delays, writes a
//! 3-node query with per-link delay windows, and asks the engine for every
//! feasible embedding with each of the paper's three algorithms.
//!
//! Run with: `cargo run -p harness --release --example quickstart`

use netembed::{Algorithm, Engine, Options, SearchMode};
use netgraph::{Direction, Network};

fn main() {
    // --- Hosting network: a ring of 6 sites with a chord -----------------
    let mut host = Network::new(Direction::Undirected);
    let sites: Vec<_> = (0..6).map(|i| host.add_node(format!("site{i}"))).collect();
    let delays = [12.0, 48.0, 25.0, 80.0, 15.0, 33.0];
    for i in 0..6 {
        let e = host.add_edge(sites[i], sites[(i + 1) % 6]);
        host.set_edge_attr(e, "avgDelay", delays[i]);
    }
    let chord = host.add_edge(sites[0], sites[3]);
    host.set_edge_attr(chord, "avgDelay", 20.0);

    // --- Query network: a path x—y—z with requested delay windows --------
    let mut query = Network::new(Direction::Undirected);
    let x = query.add_node("x");
    let y = query.add_node("y");
    let z = query.add_node("z");
    for (u, v, lo, hi) in [(x, y, 10.0, 30.0), (y, z, 10.0, 50.0)] {
        let e = query.add_edge(u, v);
        query.set_edge_attr(e, "dmin", lo);
        query.set_edge_attr(e, "dmax", hi);
    }

    // The constraint expression relates query windows to host delays
    // (§VI-B of the paper — same dot-notation objects as Table I).
    let constraint = "rEdge.avgDelay >= vEdge.dmin && rEdge.avgDelay <= vEdge.dmax";

    let engine = Engine::new(&host);

    println!(
        "host: {} nodes, {} edges",
        host.node_count(),
        host.edge_count()
    );
    println!("query: path x-y-z with delay windows\nconstraint: {constraint}\n");

    for (algorithm, name) in [
        (Algorithm::Ecf, "ECF (exhaustive + filtering)"),
        (Algorithm::Rwb, "RWB (random walk, first match)"),
        (Algorithm::Lns, "LNS (lazy neighborhood)"),
    ] {
        let mode = if algorithm == Algorithm::Rwb {
            SearchMode::First
        } else {
            SearchMode::All
        };
        let result = engine
            .embed(
                &query,
                constraint,
                &Options {
                    algorithm,
                    mode,
                    ..Options::default()
                },
            )
            .expect("well-formed problem");
        println!(
            "{name}: {} embedding(s) in {:?} [{}]",
            result.mappings.len(),
            result.stats.elapsed,
            result.outcome.label(),
        );
        for m in result.mappings.iter().take(4) {
            println!("    {}", m.display(&query, &host));
        }
        if result.mappings.len() > 4 {
            println!("    … and {} more", result.mappings.len() - 4);
        }
        println!();
    }
}

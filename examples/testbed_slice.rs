//! Embedding a testbed experiment ("slice") with node requirements and
//! resource reservation.
//!
//! The PlanetLab/Emulab use case (§I, §III): an experimenter requests a
//! topology whose nodes need specific OS types and CPU shares. The service
//! finds a feasible embedding, reserves the CPU on the chosen hosts (the
//! model is adjusted, §III component 3), and a second identical slice is
//! embedded on *different* resources because the first reservation reduced
//! capacities. The network descriptions round-trip through GraphML
//! (§VI-A) on the way in, as they would in a real deployment.
//!
//! Run with: `cargo run -p harness --release --example testbed_slice`

use netembed::{Options, Problem, SearchMode};
use netgraph::{AttrValue, Direction, Network};
use service::{NetEmbedService, QueryRequest, ReservationManager};

fn build_testbed() -> Network {
    let mut host = Network::new(Direction::Undirected);
    let mut rng = topogen::rng(11);
    use rand::Rng;
    let n = 24;
    let nodes: Vec<_> = (0..n).map(|i| host.add_node(format!("pc{i}"))).collect();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        host.set_node_attr(
            nodes[i],
            "osType",
            ["linux-2.6", "freebsd-5"][rng.random_range(0..2)],
        );
        host.set_node_attr(nodes[i], "cpu", rng.random_range(2..=8) as f64);
    }
    // Dense switch fabric: ~60% of pairs wired, 1–3 ms latency.
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(0.6) {
                let e = host.add_edge(nodes[i], nodes[j]);
                host.set_edge_attr(e, "avgDelay", rng.random_range(1.0..3.0));
            }
        }
    }
    host
}

fn slice_query() -> Network {
    // A 4-node experiment: one linux "server" (needs 4 CPU units), three
    // clients (1 unit each, any OS) in a star.
    let mut q = Network::new(Direction::Undirected);
    let server = q.add_node("server");
    q.set_node_attr(server, "osType", "linux-2.6");
    q.set_node_attr(server, "cpu", 4.0);
    for i in 0..3 {
        let c = q.add_node(format!("client{i}"));
        q.set_node_attr(c, "cpu", 1.0);
        q.add_edge(server, c);
    }
    q
}

fn main() {
    let svc = NetEmbedService::new();

    // Ship the testbed description through GraphML, as a deployment would.
    let testbed = build_testbed();
    let doc = graphml::to_string(&testbed);
    svc.register_graphml("testbed", &doc)
        .expect("valid GraphML");
    println!(
        "testbed registered from GraphML ({} bytes): {} nodes, {} links",
        doc.len(),
        testbed.node_count(),
        testbed.edge_count()
    );

    // Node constraint: OS binding (isBoundTo semantics from §VI-B) plus a
    // CPU capacity check.
    let node_constraint = "isBoundTo(vNode.osType, rNode.osType) && \
                           (!has(vNode.cpu) || rNode.cpu >= vNode.cpu)";

    let reservations = ReservationManager::new();
    let slice = slice_query();

    for attempt in 1..=3 {
        let request = QueryRequest {
            host: "testbed".into(),
            query: slice.clone(),
            constraint: node_constraint.into(),
            options: Options {
                mode: SearchMode::First,
                ..Options::default()
            },
        };
        match svc.submit(&request) {
            Ok(resp) if !resp.mappings().is_empty() => {
                let mapping = &resp.mappings()[0];
                let host = svc.registry().model("testbed").unwrap();
                println!("\nslice #{attempt} placed:");
                for (q, r) in mapping.iter() {
                    let cpu = host
                        .node_attr_by_name(r, "cpu")
                        .and_then(AttrValue::as_num)
                        .unwrap_or(0.0);
                    println!(
                        "    {:8} -> {} (cpu available before reservation: {cpu})",
                        slice.node_name(q),
                        host.node_name(r)
                    );
                }
                // Double-check against the live model, then reserve.
                let problem =
                    Problem::new(&slice, &host, node_constraint).expect("valid constraint");
                netembed::check_mapping(&problem, mapping).expect("service-verified");
                let ticket = reservations
                    .reserve(svc.registry(), "testbed", &slice, mapping, &["cpu"])
                    .expect("capacity available");
                println!("    reserved cpu under ticket {}", ticket.ticket);
            }
            Ok(_) => {
                println!("\nslice #{attempt}: no feasible placement left (capacities exhausted)");
                break;
            }
            Err(e) => {
                println!("\nslice #{attempt}: error: {e}");
                break;
            }
        }
    }
    println!("\nactive reservations: {}", reservations.active_count());
}

//! The workspace-root package exists to host the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`); it exports
//! nothing itself. See the `netembed` crate for the library entry point.

//! Cross-algorithm agreement: ECF, RWB, LNS and parallel ECF must agree on
//! feasibility, and the complete algorithms must agree on the *entire*
//! solution set. This is the completeness/correctness claim of §V checked
//! empirically across randomized instances.

use netembed::{Algorithm, Engine, Mapping, Options, SearchMode, StealPolicy};
use proptest::prelude::*;
use topogen::{make_infeasible, subgraph_query, PlanetlabParams, SubgraphParams};

/// Worker counts for the stealing-agreement properties; CI forces a
/// fixed pool via `NETEMBED_TEST_WORKERS` so skew bugs surface on
/// single-core runners too.
fn steal_threads() -> Vec<usize> {
    match std::env::var("NETEMBED_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => vec![2, 4],
    }
}

fn solution_set(
    host: &netgraph::Network,
    query: &netgraph::Network,
    constraint: &str,
    algorithm: Algorithm,
) -> Vec<Mapping> {
    let engine = Engine::new(host);
    let mut res = engine
        .embed(
            query,
            constraint,
            &Options {
                algorithm,
                mode: SearchMode::All,
                ..Options::default()
            },
        )
        .expect("well-formed problem");
    res.mappings.sort_by_key(|m| m.as_slice().to_vec());
    res.mappings
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On planted (feasible) instances all three complete algorithms
    /// enumerate identical solution sets, and RWB finds something.
    #[test]
    fn complete_algorithms_enumerate_identical_sets(seed in 0u64..500) {
        let host = topogen::planetlab_like(
            &PlanetlabParams { sites: 22, measured_prob: 0.7, clusters: 3 },
            &mut topogen::rng(seed),
        );
        let wl = subgraph_query(
            &host,
            &SubgraphParams { n: 5, edge_keep: 0.6, slack: 0.03 },
            &mut topogen::rng(seed + 1),
        );

        let ecf = solution_set(&host, &wl.query, &wl.constraint, Algorithm::Ecf);
        let lns = solution_set(&host, &wl.query, &wl.constraint, Algorithm::Lns);
        let par = solution_set(&host, &wl.query, &wl.constraint, Algorithm::ParallelEcf { threads: 3 });

        prop_assert!(!ecf.is_empty(), "planted instance must be feasible");
        prop_assert_eq!(&ecf, &lns, "ECF vs LNS solution sets differ");
        prop_assert_eq!(&ecf, &par, "ECF vs parallel ECF solution sets differ");

        // RWB (first match) must find a member of the complete set.
        let engine = Engine::new(&host);
        let rwb = engine
            .embed(&wl.query, &wl.constraint, &Options {
                algorithm: Algorithm::Rwb,
                mode: SearchMode::First,
                seed,
                ..Options::default()
            })
            .unwrap();
        prop_assert_eq!(rwb.mappings.len(), 1);
        prop_assert!(ecf.contains(&rwb.mappings[0]));

        // Every reported mapping passes independent verification.
        let problem = netembed::Problem::new(&wl.query, &host, &wl.constraint).unwrap();
        for m in &ecf {
            netembed::check_mapping(&problem, m).unwrap();
        }
    }

    /// On poisoned (infeasible) instances every algorithm returns a
    /// definitive empty result — no false positives, no hangs.
    #[test]
    fn infeasible_instances_agree(seed in 0u64..500) {
        let host = topogen::planetlab_like(
            &PlanetlabParams { sites: 20, measured_prob: 0.7, clusters: 3 },
            &mut topogen::rng(seed + 9000),
        );
        let wl = subgraph_query(
            &host,
            &SubgraphParams { n: 5, edge_keep: 0.6, slack: 0.02 },
            &mut topogen::rng(seed + 9001),
        );
        let bad = make_infeasible(&wl, 0.3, &mut topogen::rng(seed + 9002));

        for algorithm in [Algorithm::Ecf, Algorithm::Rwb, Algorithm::Lns,
                          Algorithm::ParallelEcf { threads: 2 }] {
            let engine = Engine::new(&host);
            let res = engine
                .embed(&bad.query, &bad.constraint, &Options {
                    algorithm,
                    mode: SearchMode::All,
                    ..Options::default()
                })
                .unwrap();
            prop_assert!(res.mappings.is_empty(), "{algorithm:?} found a mapping on a poisoned instance");
            prop_assert!(res.outcome.definitively_infeasible(),
                "{algorithm:?} did not return a definitive no");
        }
    }

    /// The work-stealing scheduler (aggressive splitting, 2–4 workers or
    /// the CI-forced count) enumerates exactly the ECF solution set, and
    /// a mid-search cancel triggered by a solution limit stops it with a
    /// clean partial result drawn from that set.
    #[test]
    fn stealing_parallel_agrees_with_ecf(seed in 0u64..300) {
        let host = topogen::planetlab_like(
            &PlanetlabParams { sites: 20, measured_prob: 0.7, clusters: 3 },
            &mut topogen::rng(seed + 5000),
        );
        let wl = subgraph_query(
            &host,
            &SubgraphParams { n: 5, edge_keep: 0.6, slack: 0.03 },
            &mut topogen::rng(seed + 5001),
        );
        let ecf = solution_set(&host, &wl.query, &wl.constraint, Algorithm::Ecf);
        prop_assert!(!ecf.is_empty(), "planted instance must be feasible");

        let engine = Engine::new(&host);
        for threads in steal_threads() {
            let mut par = engine
                .embed(&wl.query, &wl.constraint, &Options {
                    algorithm: Algorithm::ParallelEcf { threads },
                    mode: SearchMode::All,
                    steal: StealPolicy::aggressive(),
                    ..Options::default()
                })
                .unwrap();
            par.mappings.sort_by_key(|m| m.as_slice().to_vec());
            prop_assert_eq!(&ecf, &par.mappings,
                "stealing solution set diverges at {} threads", threads);

            // Mid-search cancel via the solution limit: the pool deadline
            // is cancelled by the first worker to reach k while the rest
            // are mid-subtree (stolen tasks drain, never re-run).
            if ecf.len() >= 2 {
                let k = 1 + ecf.len() / 2;
                let partial = engine
                    .embed(&wl.query, &wl.constraint, &Options {
                        algorithm: Algorithm::ParallelEcf { threads },
                        mode: SearchMode::UpTo(k),
                        steal: StealPolicy::aggressive(),
                        ..Options::default()
                    })
                    .unwrap();
                prop_assert_eq!(partial.mappings.len(), k);
                prop_assert!(!partial.stats.timed_out,
                    "limit stop misreported as timeout at {} threads", threads);
                for m in &partial.mappings {
                    prop_assert!(ecf.contains(m),
                        "cancelled stealing run invented a solution");
                }
            }
        }
    }

    /// Solution sets of automorphic queries are closed under the query's
    /// automorphisms: for a triangle query, the solution count must be a
    /// multiple of |Aut(K3)| = 6.
    #[test]
    fn automorphism_closure_for_triangle(seed in 0u64..200) {
        let host = topogen::planetlab_like(
            &PlanetlabParams { sites: 18, measured_prob: 0.8, clusters: 2 },
            &mut topogen::rng(seed + 400),
        );
        let wl = topogen::clique_query(3, 10.0, 200.0);
        let sols = solution_set(&host, &wl.query, &wl.constraint, Algorithm::Ecf);
        prop_assert_eq!(sols.len() % 6, 0, "triangle solutions not closed under automorphism");
    }
}

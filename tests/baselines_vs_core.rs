//! Baselines vs the NETEMBED engine: the qualitative §VII-F claims.

use baselines::{anneal, genetic, stress_greedy, AnnealParams, GeneticParams, StressParams};
use netembed::{Engine, Options, Problem, SearchMode};
use topogen::{make_infeasible, subgraph_query, PlanetlabParams, SubgraphParams};

fn planted(seed: u64, n: usize) -> (netgraph::Network, topogen::QueryWorkload) {
    let host = topogen::planetlab_like(
        &PlanetlabParams {
            sites: 30,
            measured_prob: 0.75,
            clusters: 3,
        },
        &mut topogen::rng(seed),
    );
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n,
            edge_keep: 0.8,
            slack: 0.05,
        },
        &mut topogen::rng(seed + 1),
    );
    (host, wl)
}

#[test]
fn baseline_solutions_pass_independent_verification() {
    let (host, wl) = planted(300, 6);
    let p = Problem::new(&wl.query, &host, &wl.constraint).unwrap();

    let sa = anneal(&p, &AnnealParams::default());
    if sa.feasible {
        netembed::check_mapping(&p, &sa.mapping).expect("SA mapping must verify");
    }
    let ga = genetic(&p, &GeneticParams::default());
    if ga.feasible {
        netembed::check_mapping(&p, &ga.mapping).expect("GA mapping must verify");
    }
    let stress = vec![0u32; p.nr()];
    let sg = stress_greedy(&p, &StressParams::default(), &stress);
    if sg.feasible {
        netembed::check_mapping(&p, &sg.mapping).expect("stress mapping must verify");
    }
    // At least one of the heuristics should crack this easy instance.
    assert!(
        sa.feasible || ga.feasible || sg.feasible,
        "all baselines failed an easy planted instance"
    );
}

#[test]
fn ecf_is_definitive_on_infeasible_while_heuristics_burn_budget() {
    let (host, wl) = planted(301, 6);
    let bad = make_infeasible(&wl, 0.5, &mut topogen::rng(302));
    let p = Problem::new(&bad.query, &host, &bad.constraint).unwrap();

    // ECF: definitive empty answer.
    let engine = Engine::new(&host);
    let res = engine
        .embed(&bad.query, &bad.constraint, &Options::default())
        .unwrap();
    assert!(res.outcome.definitively_infeasible());

    // Heuristics: cannot prove anything; they exhaust their budgets.
    let sa = anneal(
        &p,
        &AnnealParams {
            max_iters: 3_000,
            ..Default::default()
        },
    );
    assert!(!sa.feasible);
    assert_eq!(sa.iterations, 3_000);
    let ga = genetic(
        &p,
        &GeneticParams {
            generations: 25,
            ..Default::default()
        },
    );
    assert!(!ga.feasible);
    assert_eq!(ga.iterations, 25);
}

#[test]
fn ecf_first_match_agrees_with_baseline_feasibility_on_easy_instances() {
    for seed in 0..5u64 {
        let (host, wl) = planted(310 + seed, 5);
        let engine = Engine::new(&host);
        let ecf = engine
            .embed(
                &wl.query,
                &wl.constraint,
                &Options {
                    mode: SearchMode::First,
                    ..Options::default()
                },
            )
            .unwrap();
        // Planted instances are always feasible; ECF must find one.
        assert_eq!(ecf.mappings.len(), 1, "seed {seed}");
    }
}

#[test]
fn stress_greedy_balances_load_where_ecf_does_not_try_to() {
    // Zhu–Ammar's goal is load balancing across successive virtual
    // networks. Run three placements and check the stress spread.
    let host = topogen::planetlab_like(
        &PlanetlabParams {
            sites: 24,
            measured_prob: 0.9,
            clusters: 2,
        },
        &mut topogen::rng(320),
    );
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 4,
            edge_keep: 1.0,
            slack: 1.0, // loose: many placements available
        },
        &mut topogen::rng(321),
    );
    let p = Problem::new(&wl.query, &host, &wl.constraint).unwrap();
    let mut stress = vec![0u32; p.nr()];
    for seed in 0..3 {
        let r = stress_greedy(
            &p,
            &StressParams {
                seed,
                ..Default::default()
            },
            &stress,
        );
        if r.feasible {
            baselines::stress::apply_stress(&mut stress, &r.mapping);
        }
    }
    let max_load = *stress.iter().max().unwrap();
    assert!(max_load <= 2, "stress-greedy concentrated load: {stress:?}");
}

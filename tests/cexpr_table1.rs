//! Table I conformance: the constraint-expression objects and every §VI-B
//! language example from the paper, evaluated end-to-end through the
//! embedding engine.

use netembed::{Engine, Options};
use netgraph::{Direction, Network};

/// Hosting and query networks covering every Table I object.
fn fixtures() -> (Network, Network) {
    let mut host = Network::new(Direction::Undirected);
    let u = host.add_node("siteA");
    let v = host.add_node("siteB");
    let w = host.add_node("siteC");
    for (a, b, min, avg, max) in [
        (u, v, 90.0, 100.0, 115.0),
        (v, w, 40.0, 50.0, 65.0),
        (u, w, 10.0, 12.0, 15.0),
    ] {
        let e = host.add_edge(a, b);
        host.set_edge_attr(e, "minDelay", min);
        host.set_edge_attr(e, "avgDelay", avg);
        host.set_edge_attr(e, "maxDelay", max);
    }
    host.set_node_attr(u, "osType", "linux-2.6");
    host.set_node_attr(v, "osType", "freebsd-5");
    host.set_node_attr(w, "osType", "linux-2.6");
    host.set_node_attr(u, "x", 0.0);
    host.set_node_attr(u, "y", 0.0);
    host.set_node_attr(v, "x", 30.0);
    host.set_node_attr(v, "y", 40.0);
    host.set_node_attr(w, "x", 300.0);
    host.set_node_attr(w, "y", 400.0);

    let mut query = Network::new(Direction::Undirected);
    let a = query.add_node("qa");
    let b = query.add_node("qb");
    let e = query.add_edge(a, b);
    query.set_edge_attr(e, "avgDelay", 100.0);
    query.set_node_attr(a, "osType", "linux-2.6");
    (host, query)
}

fn count(constraint: &str) -> usize {
    let (host, query) = fixtures();
    let engine = Engine::new(&host);
    engine
        .embed(&query, constraint, &Options::default())
        .unwrap_or_else(|e| panic!("constraint `{constraint}` failed: {e}"))
        .mappings
        .len()
}

/// §VI-B example 1: ±10% window around the requested delay.
#[test]
fn paper_example_percentage_window() {
    // vEdge.avgDelay=100 within [0.9r, 1.1r] ⇒ r ∈ [90.9, 111.1]:
    // only the (siteA,siteB) edge (avg 100). Both orientations, and the
    // osType binding is not part of this constraint.
    let n = count("vEdge.avgDelay>=0.90*rEdge.avgDelay && vEdge.avgDelay<=1.10*rEdge.avgDelay");
    assert_eq!(n, 2);
}

/// §VI-B example 2: query delay within the measured min/max band.
#[test]
fn paper_example_min_max_band() {
    let n = count("vEdge.avgDelay>=rEdge.minDelay && vEdge.avgDelay<=rEdge.maxDelay");
    assert_eq!(n, 2); // only the 90..115 edge contains 100
}

/// §VI-B example 3: isBoundTo on osType — only query nodes carrying the
/// attribute are constrained.
#[test]
fn paper_example_is_bound_to() {
    // qa requires linux-2.6 (siteA or siteC); qb is unconstrained.
    // All host edges admissible topologically; count orientations where
    // the source image is linux: edges (A,B): A ok → 1 of 2 orientations…
    // Simply assert the invariant on the result instead of the count:
    let (host, query) = fixtures();
    let engine = Engine::new(&host);
    let res = engine
        .embed(
            &query,
            "isBoundTo(vSource.osType, rSource.osType)",
            &Options::default(),
        )
        .unwrap();
    assert!(!res.mappings.is_empty());
    let qa = query.node_by_name("qa").unwrap();
    for m in &res.mappings {
        let img = m.get(qa);
        assert_eq!(
            host.node_attr_by_name(img, "osType")
                .and_then(netgraph::AttrValue::as_str),
            Some("linux-2.6"),
            "qa mapped to a non-linux host"
        );
    }
}

/// §VI-B example 4: forcing a particular binding via bindTo/name.
#[test]
fn paper_example_bind_to_name() {
    let (host, mut query) = fixtures();
    let qa = query.node_by_name("qa").unwrap();
    query.set_node_attr(qa, "bindTo", "siteC");
    // Give host nodes a `name` attribute mirroring their names, as the
    // PlanetLab characterization would.
    let mut host = host;
    for n in host.node_ids().collect::<Vec<_>>() {
        let name = host.node_name(n).to_string();
        host.set_node_attr(n, "name", name);
    }
    let engine = Engine::new(&host);
    let res = engine
        .embed(
            &query,
            "isBoundTo(vNode.bindTo, rNode.name)",
            &Options::default(),
        )
        .unwrap();
    assert!(!res.mappings.is_empty());
    for m in &res.mappings {
        assert_eq!(host.node_name(m.get(qa)), "siteC");
    }
}

/// §VI-B example 5: geometric distance bound (abs/sqrt arithmetic).
#[test]
fn paper_example_geo_distance() {
    // dist(siteA, siteB) = 50 < 100; pairs involving siteC are ~500 away.
    let n = count(
        "sqrt( (rSource.x-rTarget.x)*(rSource.x-rTarget.x) + \
               (rSource.y-rTarget.y)*(rSource.y-rTarget.y) ) < 100.0",
    );
    assert_eq!(n, 2); // only the A-B edge, both orientations
}

/// Table I: all six edge-context objects resolve and evaluate.
#[test]
fn table1_objects_all_available() {
    let n = count(
        "vEdge.avgDelay > 0.0 && rEdge.avgDelay > 0.0 && \
         has(vSource.osType) && !has(vTarget.osType) && \
         has(rSource.osType) && has(rTarget.osType)",
    );
    // qa (source) has osType, qb (target) does not: constraint holds for
    // every host edge in every orientation = 6.
    assert_eq!(n, 6);
}

/// Operator precedence is Java's: `a || b && c` is `a || (b && c)`.
#[test]
fn java_precedence_end_to_end() {
    // `false && x` would poison everything if || bound tighter.
    let n = count("true || false && rEdge.avgDelay > 1e9");
    assert_eq!(n, 6); // trivially true for all 3 edges × 2 orientations
}

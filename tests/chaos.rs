//! Fault-injection chaos harness for the overload-resilient service.
//!
//! Seeded long-run interleavings drive the planner through everything
//! ISSUE 6 makes survivable at once: concurrent submits at mixed
//! priorities and budgets, heavily oversubscribed bursts, epoch churn
//! (wholesale model swaps mid-flight), tickets dropped at arbitrary
//! lifecycle stages, reservation commits racing the registry, plus the
//! service's own fault injector forcing panics inside member runs and
//! abandoning designated filter builds.
//!
//! The harness never checks *schedules* — interleavings are free. It
//! checks the invariants that must hold regardless:
//!
//! - every delivered mapping re-verifies against one of the model
//!   snapshots that was live while the request was in flight;
//! - the admission ledger balances: `accepted + shed == submitted`;
//! - the queue-depth gauge returns to zero once every ticket is waited
//!   or dropped — no slot leaks through any shed/cancel/panic path;
//! - nothing is left behind: no undelivered results, no in-flight
//!   builds, parked scratches within their configured cap;
//! - the service still answers correctly afterwards (no poisoned lock
//!   ever escapes as a wedge).
//!
//! The default run is a CI-sized smoke (~30 seeded rounds); set
//! `NETEMBED_CHAOS_FULL=1` for the long nightly run. Worker counts
//! honour `NETEMBED_TEST_WORKERS` like the rest of the suite.

use netgraph::{Direction, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service::{
    AdmissionPolicy, FaultPlan, NetEmbedService, PlannedRequest, Priority, QueryResponse,
    ReservationManager, ServiceConfig, ServiceError, ShedMode, ShedReason,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use netembed::{Algorithm, Options, Outcome, SearchMode};

/// Worker counts exercised by the burst test. CI pins this via
/// `NETEMBED_TEST_WORKERS` (1–4), like `tests/planner.rs`.
fn test_workers() -> Vec<usize> {
    match std::env::var("NETEMBED_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => vec![1, 2, 4],
    }
}

/// Seeded rounds per chaos test: a small CI smoke by default, the long
/// soak when `NETEMBED_CHAOS_FULL` is set (nightly).
fn chaos_rounds() -> u64 {
    if std::env::var("NETEMBED_CHAOS_FULL").is_ok_and(|v| !v.is_empty() && v != "0") {
        300
    } else {
        30
    }
}

/// Six hosts in a ring + chords; `delay_scale` distinguishes the two
/// epoch-churn snapshots (every response must verify against one of
/// them).
fn ring_host(delay_scale: f64) -> Network {
    let mut h = Network::new(Direction::Undirected);
    let ids: Vec<_> = (0..6).map(|i| h.add_node(format!("h{i}"))).collect();
    for i in 0..6 {
        let e = h.add_edge(ids[i], ids[(i + 1) % 6]);
        h.set_edge_attr(e, "avgDelay", delay_scale * (10.0 + i as f64 * 5.0));
    }
    for (u, v) in [(0usize, 2), (1, 4), (3, 5)] {
        let e = h.add_edge(ids[u], ids[v]);
        h.set_edge_attr(e, "avgDelay", delay_scale * 12.0);
    }
    h
}

fn edge_query() -> Network {
    let mut q = Network::new(Direction::Undirected);
    let x = q.add_node("x");
    let y = q.add_node("y");
    q.add_edge(x, y);
    q
}

fn path_query() -> Network {
    let mut q = Network::new(Direction::Undirected);
    let a = q.add_node("a");
    let b = q.add_node("b");
    let c = q.add_node("c");
    q.add_edge(a, b);
    q.add_edge(b, c);
    q
}

/// Every mapping in `resp` must satisfy its constraint against at least
/// one of the snapshots that were live during the run (the registry
/// only ever holds one of the two, so the planner's epoch snapshot was
/// one of them).
fn assert_mappings_verify(
    resp: &QueryResponse,
    query: &Network,
    constraint: &str,
    snapshots: &[&Network],
) {
    for mapping in resp.mappings() {
        let ok = snapshots.iter().any(|host| {
            let problem = netembed::Problem::new(query, host, constraint)
                .expect("chaos constraints compile against every snapshot");
            netembed::check_mapping(&problem, mapping).is_ok()
        });
        assert!(
            ok,
            "delivered mapping verifies against no live snapshot \
             (constraint `{constraint}`): {mapping:?}"
        );
    }
}

/// A response from the chaos mix is acceptable iff it is a verified
/// success, a deterministic shed, an injected-panic `Internal`, or a
/// timed-out `Inconclusive` (deadline, hopeless-deadline shed, degrade
/// mode, truncated build — all indistinguishable by design).
fn classify(
    result: Result<QueryResponse, ServiceError>,
    query: &Network,
    constraint: &str,
    snapshots: &[&Network],
    tally: &Tally,
) {
    match result {
        Ok(resp) => {
            assert_mappings_verify(&resp, query, constraint, snapshots);
            if resp.stats.timed_out {
                tally.timed_out.fetch_add(1, Ordering::Relaxed);
            } else {
                assert!(
                    !matches!(resp.outcome, Outcome::Inconclusive),
                    "Inconclusive without timed_out from the chaos mix"
                );
                tally.delivered.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(ServiceError::Overloaded(_)) => {
            tally.shed.fetch_add(1, Ordering::Relaxed);
        }
        Err(ServiceError::Internal(msg)) => {
            assert!(
                msg.contains("injected planner fault"),
                "unexpected internal panic: {msg}"
            );
            tally.injected.fetch_add(1, Ordering::Relaxed);
        }
        Err(other) => panic!("chaos surfaced an unexpected error: {other}"),
    }
}

#[derive(Default)]
struct Tally {
    delivered: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    injected: AtomicU64,
    dropped: AtomicU64,
}

const CONSTRAINTS: [&str; 3] = ["rEdge.avgDelay <= 30.0", "rEdge.avgDelay <= 45.0", "true"];

fn chaos_request(rng: &mut StdRng) -> (PlannedRequest, Network, &'static str) {
    let query = if rng.random_bool(0.5) {
        edge_query()
    } else {
        path_query()
    };
    let constraint = CONSTRAINTS[rng.random_range(0..CONSTRAINTS.len())];
    let timeout = match rng.random_range(0..4u32) {
        0 => None,
        1 => Some(Duration::from_millis(20)),
        2 => Some(Duration::from_micros(200)),
        _ => Some(Duration::from_nanos(50)),
    };
    let req = PlannedRequest {
        host: "plab".into(),
        query: query.clone(),
        constraint: constraint.into(),
        options: Options {
            mode: SearchMode::UpTo(8),
            timeout,
            ..Options::default()
        },
    };
    (req, query, constraint)
}

fn priority(rng: &mut StdRng) -> Priority {
    match rng.random_range(0..4u32) {
        0 => Priority::Low,
        1 | 2 => Priority::Normal,
        _ => Priority::High,
    }
}

/// One seeded round: a fresh service under a tight admission policy
/// with fault injection armed, three client threads of mixed
/// submit/wait/drop traffic racing a churn thread that swaps models
/// and commits reservations. Ends with the full invariant sweep.
fn chaos_round(seed: u64) {
    const CLIENTS: usize = 3;
    const OPS_PER_CLIENT: usize = 8;

    let mut cfg_rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let shed = if cfg_rng.random_bool(0.5) {
        ShedMode::Reject
    } else {
        ShedMode::DegradeInconclusive
    };
    let config = ServiceConfig::default()
        .max_parked_scratches(cfg_rng.random_range(1..=4))
        .planner_shards(cfg_rng.random_range(1..=4))
        .admission(
            AdmissionPolicy::default()
                .max_queue_depth(cfg_rng.random_range(2..=5))
                .max_group_size(cfg_rng.random_range(1..=3))
                .max_dedup_waiters(cfg_rng.random_range(1..=4))
                .shed(shed),
        )
        .faults(FaultPlan {
            panic_every_nth_run: 7,
            truncate_every_nth_build: 4,
        });
    let svc = NetEmbedService::with_config(config);
    let model_a = ring_host(1.0);
    let model_b = ring_host(1.3);
    svc.registry().register("plab", model_a.clone());

    let tally = Tally::default();
    let snapshots = [&model_a, &model_b];

    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let svc = &svc;
            let tally = &tally;
            let snapshots = &snapshots;
            s.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (client as u64 + 1).wrapping_mul(0xA5A5));
                let planner = svc.planner();
                for _ in 0..OPS_PER_CLIENT {
                    let (req, query, constraint) = chaos_request(&mut rng);
                    let pri = priority(&mut rng);
                    match planner.submit_with(&req, pri) {
                        Err(e) => classify(Err(e), &query, constraint, snapshots, tally),
                        Ok(ticket) => match rng.random_range(0..10u32) {
                            // Drop the ticket without waiting — the
                            // member may be queued, mid-dispatch, or
                            // already delivered; every path must
                            // release its gauge slot.
                            0 | 1 => {
                                if rng.random_bool(0.5) {
                                    std::thread::yield_now();
                                }
                                drop(ticket);
                                tally.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => classify(ticket.wait(), &query, constraint, snapshots, tally),
                        },
                    }
                }
            });
        }
        // Churn: wholesale model swaps (epoch bumps) and reservation
        // commit/release cycles racing the client traffic.
        let svc = &svc;
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0_FFEE);
            let reservations = ReservationManager::new();
            for step in 0..8 {
                std::thread::yield_now();
                let next = if step % 2 == 0 {
                    ring_host(1.3)
                } else {
                    ring_host(1.0)
                };
                svc.registry().register("plab", next);
                if rng.random_bool(0.5) {
                    // A reservation commit against whichever snapshot is
                    // current; no capacity attrs are declared, so it
                    // always succeeds and exercises the ticket cycle.
                    let query = edge_query();
                    if let Ok(resp) = svc.submit(&PlannedRequest {
                        host: "plab".into(),
                        query: query.clone(),
                        constraint: "true".into(),
                        options: Options {
                            mode: SearchMode::First,
                            ..Options::default()
                        },
                    }) {
                        if let Some(mapping) = resp.mappings().first() {
                            let ticket = reservations
                                .reserve(svc.registry(), "plab", &query, mapping, &[])
                                .expect("capacity-free reservation always fits")
                                .ticket;
                            reservations
                                .release(svc.registry(), ticket)
                                .expect("release of a live ticket");
                        }
                    }
                }
            }
        });
    });

    // ---- invariant sweep ----------------------------------------------
    let t = svc.telemetry();
    assert_eq!(
        t.accepted + t.shed.total(),
        t.submitted,
        "seed {seed}: admission ledger out of balance: {t:?}"
    );
    assert_eq!(
        t.queue_depth, 0,
        "seed {seed}: queue-depth gauge leaked a slot: {t:?}"
    );
    let planner = svc.planner();
    assert_eq!(
        planner.pending_requests(),
        0,
        "seed {seed}: members left queued after quiescence"
    );
    assert_eq!(
        planner.undelivered_results(),
        0,
        "seed {seed}: parked results leaked past every drop path"
    );
    assert_eq!(
        svc.cache().in_flight(),
        0,
        "seed {seed}: an in-flight filter build was stranded"
    );
    assert!(
        t.parked_scratches <= svc.effective_max_parked_scratches(),
        "seed {seed}: parked scratches above the configured cap"
    );

    // Per-shard ledgers balance individually and roll up exactly to the
    // global ledger — every shed/cancel/evict/drop path charged the
    // shard that owned the request, and only that shard.
    assert_eq!(t.shards.len(), t.planner_shards, "seed {seed}");
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut shed_total = 0u64;
    for (idx, shard) in t.shards.iter().enumerate() {
        assert_eq!(
            shard.accepted + shard.shed.total(),
            shard.submitted,
            "seed {seed}: shard {idx} ledger out of balance: {shard:?}"
        );
        assert_eq!(
            shard.queue_depth, 0,
            "seed {seed}: shard {idx} gauge leaked a slot: {shard:?}"
        );
        submitted += shard.submitted;
        accepted += shard.accepted;
        shed_total += shard.shed.total();
    }
    assert_eq!(
        (submitted, accepted, shed_total),
        (t.submitted, t.accepted, t.shed.total()),
        "seed {seed}: per-shard ledgers do not roll up to the global ledger: {t:?}"
    );

    // The service must still answer — injected panics poison no lock
    // for good. The injector stays armed (period 7), so one retry is
    // enough to step over a scheduled fault.
    let final_req = PlannedRequest {
        host: "plab".into(),
        query: edge_query(),
        constraint: "true".into(),
        options: Options::default(),
    };
    let functional = (0..4).any(|_| match planner.run(&final_req) {
        Ok(resp) => !resp.mappings().is_empty(),
        Err(ServiceError::Internal(_)) => false, // injected panic: try again
        Err(e) => panic!("seed {seed}: service wedged after chaos: {e}"),
    });
    assert!(
        functional,
        "seed {seed}: four post-chaos runs in a row produced nothing \
         (injector periods are 7 and 4 — two consecutive faults are \
         already impossible)"
    );
}

/// The injector fires dozens of intentional panics per run; keep their
/// backtraces out of the test log. Real panics still print.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected planner fault"));
        if !injected {
            default(info);
        }
    }));
}

#[test]
fn chaos_seeded_rounds_hold_every_invariant() {
    quiet_injected_panics();
    for seed in 0..chaos_rounds() {
        chaos_round(seed);
    }
}

/// The acceptance burst: ~100× more concurrent clients than the queue
/// admits. Every request must end as a verified success (bitwise
/// identical to an isolated submit), a deterministic
/// [`ServiceError::Overloaded`] reject, or — in degrade mode — a
/// timed-out `Inconclusive`. Exercised at every pinned worker count.
#[test]
fn oversubscribed_burst_sheds_cleanly_with_identical_survivors() {
    const CLIENTS: usize = 100;
    for workers in test_workers() {
        for shed in [ShedMode::Reject, ShedMode::DegradeInconclusive] {
            let svc = NetEmbedService::with_config(
                ServiceConfig::default()
                    .admission(AdmissionPolicy::default().max_queue_depth(1).shed(shed)),
            );
            let host = ring_host(1.0);
            svc.registry().register("plab", host.clone());
            let req = PlannedRequest {
                host: "plab".into(),
                query: edge_query(),
                constraint: "rEdge.avgDelay <= 30.0".into(),
                options: Options {
                    algorithm: Algorithm::ParallelEcf { threads: workers },
                    ..Options::default()
                },
            };
            let expected = {
                let iso = NetEmbedService::new();
                iso.registry().register("plab", host.clone());
                sorted_mappings(&iso.submit(&req).expect("isolated submit"))
            };
            assert!(!expected.is_empty(), "burst scenario must be feasible");

            let barrier = Barrier::new(CLIENTS);
            let results: Vec<Result<QueryResponse, ServiceError>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|_| {
                        let planner = svc.planner();
                        let req = &req;
                        let barrier = &barrier;
                        s.spawn(move || {
                            barrier.wait();
                            planner.run(req)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let mut succeeded = 0usize;
            let mut degraded = 0usize;
            let mut rejected = 0usize;
            for result in results {
                match result {
                    Ok(resp) if resp.stats.timed_out => {
                        assert_eq!(
                            shed,
                            ShedMode::DegradeInconclusive,
                            "reject mode must not degrade"
                        );
                        assert!(matches!(resp.outcome, Outcome::Inconclusive));
                        assert!(resp.mappings().is_empty());
                        degraded += 1;
                    }
                    Ok(resp) => {
                        assert_eq!(
                            sorted_mappings(&resp),
                            expected,
                            "{workers} workers: an admitted survivor diverged \
                             from its isolated submit"
                        );
                        succeeded += 1;
                    }
                    Err(ServiceError::Overloaded(reason)) => {
                        assert_eq!(shed, ShedMode::Reject, "degrade mode must not reject");
                        assert_eq!(reason, ShedReason::QueueFull);
                        rejected += 1;
                    }
                    Err(other) => panic!("burst surfaced {other}"),
                }
            }
            assert!(succeeded >= 1, "at least the first admit completes");
            assert_eq!(succeeded + degraded + rejected, CLIENTS);

            let t = svc.telemetry();
            assert_eq!(t.submitted, CLIENTS as u64);
            assert_eq!(t.accepted + t.shed.total(), t.submitted);
            assert_eq!(t.accepted, succeeded as u64);
            assert_eq!(t.queue_depth, 0, "burst leaked a gauge slot");
            assert!(t.queue_wait.count() >= succeeded as u64);
            assert!(t.dispatch_latency.count() >= 1);
            assert!(
                t.queue_wait.summary().starts_with("n="),
                "histogram summary renders"
            );
        }
    }
}

/// Order-insensitive view of a response's mappings.
fn sorted_mappings(resp: &QueryResponse) -> Vec<Vec<(u32, u32)>> {
    let mut out: Vec<Vec<(u32, u32)>> = resp
        .mappings()
        .iter()
        .map(|m| m.iter().map(|(q, r)| (q.0, r.0)).collect())
        .collect();
    out.sort();
    out
}

// ---- feed-fault chaos ------------------------------------------------------

use netgraph::{AttrValue, NodeId};
use service::cache::network_fingerprint;
use service::{
    DeltaMutation, DirtySet, FeedConfig, FeedSnapshot, FeedState, RegistryDelta, RegistryFeed,
};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Every edge of [`ring_host`], by endpoint ids — the mutation targets
/// for the feed-fault delta scripts.
const RING_EDGES: [(u32, u32); 9] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 4),
    (4, 5),
    (5, 0),
    (0, 2),
    (1, 4),
    (3, 5),
];

/// An `avgDelay` rewrite on one ring edge covering `seq → seq + 1`.
fn edge_delta(seq: u64, (src, dst): (u32, u32), delay: f64) -> RegistryDelta {
    RegistryDelta {
        host: "plab".into(),
        base_seq: seq,
        next_seq: seq + 1,
        mutation: DeltaMutation::SetEdgeAttr {
            src,
            dst,
            attr: "avgDelay".into(),
            value: AttrValue::Num(delay),
        },
        dirty: DirtySet::from_ids([src, dst]),
    }
}

/// Replay one clean delta onto the upstream truth.
fn apply_truth(net: &mut Network, delta: &RegistryDelta) {
    match &delta.mutation {
        DeltaMutation::SetEdgeAttr {
            src,
            dst,
            attr,
            value,
        } => {
            let e = net
                .find_edge(NodeId(*src), NodeId(*dst))
                .expect("script targets ring edges");
            net.set_edge_attr(e, attr.as_str(), value.clone());
        }
        other => unreachable!("feed chaos scripts only edge rewrites, got {other:?}"),
    }
}

/// A scripted stream that emits at most `chunk` deltas per pump and
/// publishes the highest `next_seq` emitted so far, so the snapshot
/// source can serve the matching upstream truth (threads share the
/// high-water mark through an atomic).
struct ScriptedStream {
    script: Vec<RegistryDelta>,
    pos: usize,
    chunk: usize,
    served_this_burst: usize,
    emitted_hwm: Arc<AtomicU64>,
}

impl service::DeltaStream for ScriptedStream {
    fn next_delta(&mut self) -> Option<RegistryDelta> {
        if self.served_this_burst == self.chunk {
            self.served_this_burst = 0;
            return None;
        }
        let delta = self.script.get(self.pos)?.clone();
        self.pos += 1;
        self.served_this_burst += 1;
        self.emitted_hwm
            .fetch_max(delta.next_seq, Ordering::Relaxed);
        Some(delta)
    }
}

/// One seeded feed-fault round: a scripted upstream of edge rewrites is
/// mangled — drops, duplicates, adjacent swaps, three-slot delays, and
/// corrupted (under-declared dirty) deltas that force resyncs — while
/// client threads keep submitting against the host being mutated.
///
/// Invariants checked regardless of the schedule:
/// - every delivered mapping re-verifies against **some** prefix of the
///   clean delta sequence — i.e. a state the feed actually applied
///   (organically or via snapshot), never a torn or invented one;
/// - the feed converges to exactly the clean stream's final state, with
///   the delivery ledger balanced and at least one gap resync;
/// - nothing is lost: the last applied sequence reaches the end.
fn feed_chaos_round(seed: u64) {
    const DELTAS: usize = 30;
    const CLIENTS: usize = 2;
    const OPS_PER_CLIENT: usize = 6;

    let mut rng = StdRng::seed_from_u64(seed ^ 0x00FE_EDFA);
    let base = ring_host(1.0);
    let clean: Vec<RegistryDelta> = (0..DELTAS)
        .map(|i| {
            let edge = RING_EDGES[rng.random_range(0..RING_EDGES.len())];
            edge_delta(i as u64, edge, rng.random_range(5.0..50.0))
        })
        .collect();
    let mut states = vec![base.clone()];
    for delta in &clean {
        let mut next = states.last().unwrap().clone();
        apply_truth(&mut next, delta);
        states.push(next);
    }

    // Fault schedule: mangle the emission order and content.
    let mut script: Vec<RegistryDelta> = Vec::new();
    let mut held: Vec<(usize, RegistryDelta)> = Vec::new();
    let mut dropped = 0usize;
    let mut i = 0usize;
    while i < clean.len() {
        held.retain(|(release_at, delta)| {
            if *release_at <= script.len() {
                script.push(delta.clone());
                false
            } else {
                true
            }
        });
        match rng.random_range(0..20u32) {
            0 | 1 => dropped += 1, // dropped: never emitted
            2 | 3 => {
                script.push(clean[i].clone());
                script.push(clean[i].clone()); // duplicated
            }
            4 | 5 if i + 1 < clean.len() => {
                script.push(clean[i + 1].clone()); // adjacent swap
                script.push(clean[i].clone());
                i += 1;
            }
            6 => held.push((script.len() + 3, clean[i].clone())), // delayed
            7 => {
                // Corrupted: the dirty declaration is stripped, so the
                // delta rejects on apply and forces a resync; the clean
                // version is never emitted (recovered via snapshot).
                let mut corrupt = clean[i].clone();
                corrupt.dirty = DirtySet::new();
                script.push(corrupt);
                dropped += 1;
            }
            _ => script.push(clean[i].clone()),
        }
        i += 1;
    }
    for (_, delta) in held {
        script.push(delta);
    }
    if dropped == 0 {
        // Every round must exercise the resync path: steal one delta
        // from the middle of the schedule.
        let victim = clean[DELTAS / 2].clone();
        script.retain(|d| d.base_seq != victim.base_seq);
        dropped += 1;
    }
    // Close any trailing gap: re-emit the tail so drops near the end
    // still open a gap the parked buffer can see (a duplicate if the
    // tail already landed).
    script.push(clean[DELTAS - 1].clone());

    let svc = NetEmbedService::new();
    svc.registry().register("plab", base.clone());
    let emitted_hwm = Arc::new(AtomicU64::new(0));
    let stream = ScriptedStream {
        script,
        pos: 0,
        chunk: 3,
        served_this_burst: 0,
        emitted_hwm: Arc::clone(&emitted_hwm),
    };
    let snapshot_hwm = Arc::clone(&emitted_hwm);
    let snapshot_states = states.clone();
    let snapshots = move || {
        let seq = snapshot_hwm.load(Ordering::Relaxed);
        Some(FeedSnapshot {
            seq,
            models: vec![("plab".into(), snapshot_states[seq as usize].clone())],
        })
    };
    let converged = AtomicBool::new(false);

    std::thread::scope(|s| {
        let svc = &svc;
        let converged = &converged;
        s.spawn(move || {
            let mut feed = RegistryFeed::new(stream, snapshots, FeedConfig::default());
            for _ in 0..5_000 {
                let state = feed.pump(svc);
                if state == FeedState::Live && feed.cursor() == DELTAS as u64 {
                    converged.store(true, Ordering::Relaxed);
                    return;
                }
                std::thread::yield_now();
            }
        });
        for client in 0..CLIENTS {
            let states = &states;
            s.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (client as u64 + 1).wrapping_mul(0xFEED));
                let snapshots: Vec<&Network> = states.iter().collect();
                let planner = svc.planner();
                for op in 0..OPS_PER_CLIENT {
                    let query = edge_query();
                    let constraint = CONSTRAINTS[rng.random_range(0..CONSTRAINTS.len())];
                    let req = PlannedRequest {
                        host: "plab".into(),
                        query: query.clone(),
                        constraint: constraint.into(),
                        options: Options {
                            mode: SearchMode::UpTo(8),
                            ..Options::default()
                        },
                    };
                    let result = if op % 2 == 0 {
                        svc.submit(&req)
                    } else {
                        planner.run(&req)
                    };
                    let resp = result.expect("no admission bounds configured: never sheds");
                    assert_mappings_verify(&resp, &query, constraint, &snapshots);
                    std::thread::yield_now();
                }
            });
        }
    });

    assert!(
        converged.load(Ordering::Relaxed),
        "seed {seed}: faulty feed failed to converge"
    );
    let feed_tl = svc.telemetry().feed;
    assert!(
        feed_tl.balanced(),
        "seed {seed}: delivery ledger unbalanced: {feed_tl:?}"
    );
    assert!(
        feed_tl.gap_resyncs >= 1,
        "seed {seed}: {dropped} losses must force a resync: {feed_tl:?}"
    );
    assert_eq!(feed_tl.last_applied_seq, DELTAS as u64, "seed {seed}");
    assert_eq!(feed_tl.lag, 0, "seed {seed}");
    assert_eq!(
        network_fingerprint(&svc.registry().model("plab").unwrap()),
        network_fingerprint(states.last().unwrap()),
        "seed {seed}: converged state diverges from the clean stream"
    );

    // Repair soundness sweep: one more (single-threaded) submit per
    // constraint classifies its epoch window — promote, patch in
    // place, or fall back to a rebuild — with the per-submit
    // accounting holding exactly, and whatever the cache then serves
    // at the converged epoch must be bitwise-identical to a fresh
    // build against the converged model.
    let final_model = svc.registry().model("plab").unwrap();
    let final_epoch = svc.registry().epoch("plab").unwrap();
    for constraint in CONSTRAINTS {
        let query = edge_query();
        let req = PlannedRequest {
            host: "plab".into(),
            query: query.clone(),
            constraint: constraint.into(),
            options: Options {
                mode: SearchMode::UpTo(8),
                ..Options::default()
            },
        };
        let misses_before = svc.cache().misses();
        let resp = svc.submit(&req).expect("no admission bounds: never sheds");
        assert!(
            resp.stats.patches + resp.stats.patch_rebuilds <= 1,
            "seed {seed}: one submit classifies at most one window"
        );
        if resp.stats.patches == 1 {
            assert_eq!(
                resp.stats.filter_cache_hits, 1,
                "seed {seed}: a patched entry must serve the hit"
            );
            assert_eq!(
                svc.cache().misses(),
                misses_before,
                "seed {seed}: a patched submit must not also rebuild"
            );
        }
        if resp.stats.patch_rebuilds == 1 {
            assert_eq!(
                svc.cache().misses(),
                misses_before + 1,
                "seed {seed}: a patch fallback must pay exactly one miss"
            );
        }
        let key = service::FilterKey {
            host: "plab".into(),
            epoch: final_epoch,
            query_hash: network_fingerprint(&query),
            constraint: constraint.into(),
        };
        let cached = svc
            .cache()
            .lookup(&key)
            .expect("sweep submit caches at the converged epoch");
        let problem =
            netembed::Problem::new(&query, &final_model, constraint).expect("valid constraint");
        let mut deadline = netembed::Deadline::unlimited();
        let mut build_stats = netembed::SearchStats::default();
        let fresh = netembed::FilterMatrix::build(&problem, &mut deadline, &mut build_stats)
            .expect("unlimited build");
        assert!(
            *cached == fresh,
            "seed {seed}: the filter served at the converged epoch diverges from a fresh build \
             under {constraint:?}"
        );
    }
    // The repair ledger surfaces in telemetry alongside hits/misses.
    let tl = svc.telemetry();
    assert_eq!(
        tl.filter_cache_patches,
        svc.cache().patches(),
        "seed {seed}"
    );
    assert_eq!(
        tl.filter_cache_patch_rebuilds,
        svc.cache().patch_rebuilds(),
        "seed {seed}"
    );
    assert_eq!(
        tl.filter_cache_promotions,
        svc.cache().promotions(),
        "seed {seed}"
    );
}

#[test]
fn feed_fault_rounds_converge_and_serve_only_applied_states() {
    for seed in 0..chaos_rounds() {
        feed_chaos_round(seed);
    }
}

/// The dirty-window algebra, end to end through a live feed: stepping a
/// clean scripted stream one delta per pump, the registry's
/// `dirty_between` over **every** epoch window must equal the union of
/// the per-delta dirty sets inside that window.
#[test]
fn feed_dirty_windows_compose_to_the_union_of_delta_dirty_sets() {
    const DELTAS: usize = 12;
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1F7);
        let svc = NetEmbedService::new();
        svc.registry().register("plab", ring_host(1.0));
        let clean: Vec<RegistryDelta> = (0..DELTAS)
            .map(|i| {
                let edge = RING_EDGES[rng.random_range(0..RING_EDGES.len())];
                edge_delta(i as u64, edge, rng.random_range(5.0..50.0))
            })
            .collect();
        let stream = ScriptedStream {
            script: clean.clone(),
            pos: 0,
            chunk: 1,
            served_this_burst: 0,
            emitted_hwm: Arc::new(AtomicU64::new(0)),
        };
        let mut feed = RegistryFeed::new(
            stream,
            || -> Option<FeedSnapshot> { panic!("clean stream must not resync") },
            FeedConfig::default(),
        );
        let mut epochs = vec![svc.registry().epoch("plab").unwrap()];
        for step in 0..DELTAS {
            assert_eq!(feed.pump(&svc), FeedState::Live, "seed {seed} step {step}");
            epochs.push(svc.registry().epoch("plab").unwrap());
        }
        for i in 0..=DELTAS {
            for j in i..=DELTAS {
                let mut expected = DirtySet::new();
                for delta in &clean[i..j] {
                    expected.union_with(&delta.dirty);
                }
                assert_eq!(
                    svc.registry().dirty_between("plab", epochs[i], epochs[j]),
                    Some(expected),
                    "seed {seed}: window {i}..{j} does not compose"
                );
            }
        }
        let feed_tl = svc.telemetry().feed;
        assert_eq!(feed_tl.applied, DELTAS as u64, "seed {seed}");
        assert!(feed_tl.balanced(), "seed {seed}: {feed_tl:?}");
        assert_eq!(feed_tl.gap_resyncs, 0, "seed {seed}");
    }
}

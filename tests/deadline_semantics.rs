//! Cross-crate deadline semantics: zero/expired budgets are caught before
//! any work, cancellation propagates through cloned and scoped deadlines,
//! strided polling cannot mask expiry at phase boundaries, and truncated
//! filter builds still report comparable filter-phase counters.

use netembed::{
    ecf, parallel, Algorithm, CollectAll, Deadline, Engine, NodeOrder, Options, Outcome, Problem,
    SearchStats,
};
use netgraph::{Direction, Network, NodeId};
use std::time::Duration;

/// Clique host with delay and cpu attributes.
fn clique_host(n: usize) -> Network {
    let mut h = Network::new(Direction::Undirected);
    let ids: Vec<NodeId> = (0..n).map(|i| h.add_node(format!("h{i}"))).collect();
    for &id in &ids {
        h.set_node_attr(id, "cpu", 8.0);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let e = h.add_edge(ids[i], ids[j]);
            h.set_edge_attr(e, "d", ((i * 7 + j * 3) % 50) as f64);
        }
    }
    h
}

fn ring_query(n: usize) -> Network {
    let mut q = Network::new(Direction::Undirected);
    let ids: Vec<NodeId> = (0..n).map(|i| q.add_node(format!("q{i}"))).collect();
    for i in 0..n {
        q.add_edge(ids[i], ids[(i + 1) % n]);
    }
    q
}

#[test]
fn zero_budget_caught_before_any_work() {
    let host = clique_host(8);
    let query = ring_query(3);
    let engine = Engine::new(&host);
    for algorithm in [
        Algorithm::Ecf,
        Algorithm::Rwb,
        Algorithm::ParallelEcf { threads: 2 },
    ] {
        let r = engine
            .embed(
                &query,
                "true",
                &Options {
                    algorithm,
                    timeout: Some(Duration::ZERO),
                    ..Options::default()
                },
            )
            .unwrap();
        assert!(matches!(r.outcome, Outcome::Inconclusive), "{algorithm:?}");
        assert!(r.stats.timed_out, "{algorithm:?}");
        assert_eq!(r.stats.nodes_visited, 0, "{algorithm:?}: work happened");
        assert_eq!(
            r.stats.constraint_evals, 0,
            "{algorithm:?}: evaluation happened"
        );
    }
}

#[test]
fn mid_stride_polls_do_not_mask_expiry_at_phase_boundaries() {
    // Burn part of the deadline's poll stride while its budget is still
    // live, then let the clock run out. The next *phase boundary* (the
    // build's entry check) must observe expiry immediately — the strided
    // counter being mid-stride must not buy the search hundreds of free
    // tree nodes.
    let host = clique_host(8);
    let query = ring_query(3);
    let problem = Problem::new(&query, &host, "true").unwrap();
    let mut dl = Deadline::new(Some(Duration::from_millis(20)));
    for _ in 0..17 {
        let _ = dl.expired(); // consume mid-stride polls
    }
    std::thread::sleep(Duration::from_millis(25));
    assert!(!dl.was_expired(), "strided poll should not have fired yet");
    let mut sink = CollectAll::default();
    let mut stats = SearchStats::default();
    let end = ecf::search(
        &problem,
        NodeOrder::default(),
        &mut dl,
        &mut sink,
        &mut stats,
    )
    .unwrap();
    assert_eq!(end, ecf::SearchEnd::Timeout);
    assert!(stats.timed_out);
    assert_eq!(stats.nodes_visited, 0);
    assert_eq!(stats.constraint_evals, 0);
}

#[test]
fn cancellation_propagates_through_cloned_worker_deadlines() {
    // A cancelled parent deadline must stop the parallel search's workers
    // (which run on scoped + cloned children) before they visit anything.
    let host = clique_host(8);
    let query = ring_query(3);
    let problem = Problem::new(&query, &host, "true").unwrap();
    let mut dl = Deadline::unlimited();
    dl.cancel();
    let mut stats = SearchStats::default();
    let (sols, end) =
        parallel::search(&problem, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
    assert!(sols.is_empty());
    assert_eq!(end, ecf::SearchEnd::Timeout);
    assert_eq!(stats.nodes_visited, 0);
}

#[test]
fn cancel_mid_search_stops_all_workers() {
    // Cancel from another thread while the parallel search runs. Either
    // the canceller wins (Timeout, partial results) or the search was
    // simply faster (Exhausted) — but it must never hang, and a timeout
    // must be flagged in the stats.
    let host = clique_host(11);
    let query = ring_query(5);
    let problem = Problem::new(&query, &host, "true").unwrap();
    let dl = Deadline::unlimited();
    let canceller = dl.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        canceller.cancel();
    });
    let mut dl = dl;
    let mut stats = SearchStats::default();
    let (_, end) =
        parallel::search(&problem, 4, None, NodeOrder::default(), &mut dl, &mut stats).unwrap();
    handle.join().unwrap();
    match end {
        ecf::SearchEnd::Timeout => assert!(stats.timed_out),
        ecf::SearchEnd::Exhausted => assert!(!stats.timed_out),
        other => panic!("unexpected end: {other:?}"),
    }
}

#[test]
fn truncated_build_still_reports_filter_phase_counters() {
    // A budget big enough to start the first-stage scan but far too small
    // to finish it (the same scenario takes milliseconds unconstrained):
    // the timeout row must still carry the filter-phase counters so it is
    // comparable with completed rows in harness/bench tables.
    let host = clique_host(40);
    let query = ring_query(4);
    let constraint = "rNode.cpu >= 0.0 && rEdge.d <= 25.0";
    let engine = Engine::new(&host);
    for algorithm in [Algorithm::Ecf, Algorithm::ParallelEcf { threads: 4 }] {
        let r = engine
            .embed(
                &query,
                constraint,
                &Options {
                    algorithm,
                    timeout: Some(Duration::from_micros(50)),
                    ..Options::default()
                },
            )
            .unwrap();
        assert!(matches!(r.outcome, Outcome::Inconclusive), "{algorithm:?}");
        assert!(r.stats.timed_out, "{algorithm:?}");
        assert_eq!(r.stats.nodes_visited, 0, "{algorithm:?}: search ran");
        // The node-admissibility prefilter ran before the budget expired,
        // so the eval counter is populated even on the timeout row.
        assert!(
            r.stats.constraint_evals > 0,
            "{algorithm:?}: filter-phase counters missing from timeout row"
        );
    }
}

#[test]
fn scoped_limit_stop_leaves_request_deadline_usable() {
    // Engine-level view of the parallel bugfix: an UpTo-limit stop inside
    // the parallel search must classify as Partial (not a timeout).
    let host = clique_host(8);
    let query = ring_query(3);
    let engine = Engine::new(&host);
    let r = engine
        .embed(
            &query,
            "true",
            &Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                mode: netembed::SearchMode::UpTo(4),
                ..Options::default()
            },
        )
        .unwrap();
    assert_eq!(r.mappings.len(), 4);
    assert!(matches!(r.outcome, Outcome::Partial(_)));
    assert!(!r.stats.timed_out, "limit stop misreported as timeout");
}

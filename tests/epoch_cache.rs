//! Epoch/cache semantics, property-tested end to end through the
//! service: a filter served from the epoch-keyed cache must be
//! **bitwise-identical** (the CSR-storage `PartialEq` from the layout
//! properties) to a filter freshly built against the same model
//! snapshot, at every tested worker count; and a model mutation —
//! `registry.update` or a reservation commit — must invalidate exactly
//! the affected host's entries, leaving sibling hosts' cached filters
//! hot.

use netembed::{Algorithm, Deadline, FilterMatrix, Options, Problem, SearchStats};
use netgraph::{Direction, Network, NodeId};
use proptest::prelude::*;
use service::cache::network_fingerprint;
use service::{FilterKey, NetEmbedService, QueryRequest, ReservationManager};

/// Worker counts exercised (1 = sequential build path, >1 = the pooled
/// parallel build). CI pins this via `NETEMBED_TEST_WORKERS=4` so the
/// persistent-pool path runs even on single-core runners.
fn test_workers() -> Vec<usize> {
    match std::env::var("NETEMBED_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => vec![1, 2, 3, 4],
    }
}

/// Random host/query pair (undirected; self-loops and duplicates
/// dropped, query clamped to the host size so the problem is wellformed).
fn build_nets(
    nr: usize,
    hedges: &[(u32, u32, u32)],
    nq: usize,
    qedges: &[(u32, u32)],
) -> (Network, Network) {
    let nq = nq.min(nr);
    let mut host = Network::new(Direction::Undirected);
    for i in 0..nr {
        host.add_node(format!("h{i}"));
    }
    for &(u, v, d) in hedges {
        let (u, v) = (NodeId(u % nr as u32), NodeId(v % nr as u32));
        if u != v && !host.has_edge(u, v) {
            let e = host.add_edge(u, v);
            host.set_edge_attr(e, "d", d as f64);
        }
    }
    let mut query = Network::new(Direction::Undirected);
    for i in 0..nq {
        query.add_node(format!("q{i}"));
    }
    for &(u, v) in qedges {
        let (u, v) = (NodeId(u % nq as u32), NodeId(v % nq as u32));
        if u != v && !query.has_edge(u, v) {
            query.add_edge(u, v);
        }
    }
    (host, query)
}

fn fresh_filter(query: &Network, host: &Network, constraint: &str) -> FilterMatrix {
    let problem = Problem::new(query, host, constraint).expect("wellformed problem");
    let mut dl = Deadline::unlimited();
    let mut stats = SearchStats::default();
    FilterMatrix::build(&problem, &mut dl, &mut stats).expect("unlimited build")
}

fn request(host: &str, query: &Network, constraint: &str, threads: usize) -> QueryRequest {
    QueryRequest {
        host: host.into(),
        query: query.clone(),
        constraint: constraint.into(),
        options: Options {
            algorithm: if threads > 1 {
                Algorithm::ParallelEcf { threads }
            } else {
                Algorithm::Ecf
            },
            ..Options::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache hit returns a filter bitwise-identical to a fresh
    /// sequential build against the same snapshot — whichever worker
    /// count (sequential or pooled-parallel build) populated the cache.
    #[test]
    fn cache_hit_is_bitwise_identical_to_fresh_build(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
    ) {
        let (host, query) = build_nets(nr, &hedges, nq, &qedges);
        let constraint = format!("rEdge.d <= {thr}.0");
        for threads in test_workers() {
            let svc = NetEmbedService::new();
            let epoch = svc.registry().register("h", host.clone());
            let first = svc.submit(&request("h", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(first.stats.filter_cache_hits, 0, "cold submit must build");
            let key = FilterKey {
                host: "h".into(),
                epoch,
                query_hash: network_fingerprint(&query),
                constraint: constraint.clone(),
            };
            let cached = svc.cache().lookup(&key).expect("first submit populated the cache");
            let fresh = fresh_filter(&query, &host, &constraint);
            prop_assert!(
                *cached == fresh,
                "cached filter differs from fresh build at {} threads",
                threads
            );
            // And the hit actually happens on the next submit, returning
            // that same matrix.
            let warm = svc.submit(&request("h", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(warm.stats.filter_cache_hits, 1);
            prop_assert_eq!(warm.stats.constraint_evals, 0);
            prop_assert_eq!(warm.mappings().len(), first.mappings().len());
        }
    }

    /// `registry.update` invalidates exactly the updated host: the
    /// sibling host's cache entry stays hot, the updated host rebuilds
    /// exactly once (against the bumped epoch) and then hits again.
    #[test]
    fn update_invalidates_exactly_the_affected_host(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
        bump in 1u32..40,
    ) {
        let (host, query) = build_nets(nr, &hedges, nq, &qedges);
        let constraint = format!("rEdge.d <= {thr}.0");
        for threads in test_workers() {
            let svc = NetEmbedService::new();
            svc.registry().register("a", host.clone());
            svc.registry().register("b", host.clone());
            svc.submit(&request("a", &query, &constraint, threads)).unwrap();
            svc.submit(&request("b", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(svc.cache().len(), 2);

            // Mutate host `a` (delay shift ⇒ a genuinely different model).
            let new_epoch = svc
                .registry()
                .update("a", |net| {
                    for e in net.edge_refs().collect::<Vec<_>>() {
                        if let Some(d) = net
                            .edge_attr_by_name(e.id, "d")
                            .and_then(netgraph::AttrValue::as_num)
                        {
                            net.set_edge_attr(e.id, "d", d + bump as f64);
                        }
                    }
                })
                .unwrap();
            prop_assert_eq!(svc.registry().epoch("a"), Some(new_epoch));

            // `b` still hits — its epoch never moved.
            let b_warm = svc.submit(&request("b", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(b_warm.stats.filter_cache_hits, 1, "host b was invalidated");

            // `a` rebuilds exactly once, bitwise-identical to a fresh
            // build against the *new* snapshot, then hits again.
            let a_rebuilt = svc.submit(&request("a", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(a_rebuilt.stats.filter_cache_hits, 0, "host a served stale filter");
            let key = FilterKey {
                host: "a".into(),
                epoch: new_epoch,
                query_hash: network_fingerprint(&query),
                constraint: constraint.clone(),
            };
            let cached = svc.cache().lookup(&key).expect("rebuild cached");
            let new_model = svc.registry().model("a").unwrap();
            let fresh = fresh_filter(&query, &new_model, &constraint);
            prop_assert!(*cached == fresh, "post-update cache entry is stale");
            let a_warm = svc.submit(&request("a", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(a_warm.stats.filter_cache_hits, 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An epoch bump whose tracked delta only ever *shrinks* the model
    /// (every edge delay rises, so candidates can only leave) is
    /// repaired **in place**: the warm submit hits the patched entry
    /// with zero new misses, and that entry is bitwise-identical to a
    /// filter freshly built against the mutated snapshot.
    #[test]
    fn patched_entry_is_bitwise_identical_to_fresh_build(
        nr in 3usize..8,
        hedges in proptest::collection::vec((0u32..8, 0u32..8, 0u32..50), 1..20),
        nq in 2usize..5,
        qedges in proptest::collection::vec((0u32..5, 0u32..5), 1..8),
        thr in 5u32..45,
        bump in 1u32..60,
    ) {
        let (host, query) = build_nets(nr, &hedges, nq, &qedges);
        let constraint = format!("rEdge.d <= {thr}.0");
        for threads in test_workers() {
            let svc = NetEmbedService::new();
            svc.registry().register("h", host.clone());
            let cold = svc.submit(&request("h", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(cold.stats.filter_cache_hits, 0);

            // Every edge's delay rises: a purely subtractive delta
            // touching every node.
            let all_nodes = service::DirtySet::from_ids(0..nr as u32);
            let (_, new_epoch) = svc
                .registry()
                .update_dirty("h", all_nodes, |net| {
                    for e in net.edge_refs().collect::<Vec<_>>() {
                        if let Some(d) = net
                            .edge_attr_by_name(e.id, "d")
                            .and_then(netgraph::AttrValue::as_num)
                        {
                            net.set_edge_attr(e.id, "d", d + bump as f64);
                        }
                    }
                })
                .unwrap();

            let misses_before = svc.cache().misses();
            let warm = svc.submit(&request("h", &query, &constraint, threads)).unwrap();
            prop_assert_eq!(warm.stats.filter_cache_hits, 1, "patched entry must hit");
            prop_assert_eq!(warm.stats.patches, 1);
            prop_assert_eq!(svc.cache().misses(), misses_before, "subtractive delta rebuilt");
            let key = FilterKey {
                host: "h".into(),
                epoch: new_epoch,
                query_hash: network_fingerprint(&query),
                constraint: constraint.clone(),
            };
            let cached = svc.cache().lookup(&key).expect("patched entry re-keyed");
            let new_model = svc.registry().model("h").unwrap();
            let fresh = fresh_filter(&query, &new_model, &constraint);
            prop_assert!(
                *cached == fresh,
                "patched filter diverged from the fresh build at {} threads",
                threads
            );
        }
    }
}

/// Regression: a designated in-flight build racing `remove_model` must
/// not resurrect the dead host's cache entry. The removal poisons the
/// host's in-flight slots, so a builder completing *after* the model
/// died publishes nothing.
#[test]
fn inflight_build_completed_after_remove_model_stays_dead() {
    let (host, query) = build_nets(4, &[(0, 1, 5), (1, 2, 5), (2, 3, 5)], 2, &[(0, 1)]);
    let constraint = "rEdge.d <= 10.0";
    let svc = NetEmbedService::new();
    let epoch = svc.registry().register("h", host.clone());
    let key = FilterKey {
        host: "h".into(),
        epoch,
        query_hash: network_fingerprint(&query),
        constraint: constraint.into(),
    };
    let ticket = match svc.cache().fetch_or_build(&key, None) {
        service::cache::FilterFetch::MustBuild(ticket) => ticket,
        _ => panic!("cold fetch must designate a builder"),
    };

    // The model dies while the build is in flight.
    assert!(svc.remove_model("h").is_some());
    assert_eq!(svc.cache().len(), 0);

    // The late builder completes anyway: the poisoned slot must swallow
    // the publish instead of resurrecting a filter for a dead host.
    ticket.complete(std::sync::Arc::new(fresh_filter(&query, &host, constraint)));
    assert_eq!(
        svc.cache().len(),
        0,
        "a completed in-flight build resurrected a removed host's entry"
    );
    assert!(svc.cache().lookup(&key).is_none());
}

/// A reservation commit is a registry update: it must invalidate the
/// reserved host's filters (capacity dropped — cached candidates would
/// be wrong) while leaving other hosts' entries hot.
#[test]
fn reservation_commit_invalidates_reserved_host_only() {
    let mut host = Network::new(Direction::Undirected);
    let a = host.add_node("a");
    let b = host.add_node("b");
    let c = host.add_node("c");
    for (u, v) in [(a, b), (b, c), (a, c)] {
        host.add_edge(u, v);
    }
    for n in [a, b, c] {
        host.set_node_attr(n, "cpu", 4.0);
    }
    let mut query = Network::new(Direction::Undirected);
    let x = query.add_node("x");
    let y = query.add_node("y");
    query.add_edge(x, y);
    query.set_node_attr(x, "cpu", 3.0);
    query.set_node_attr(y, "cpu", 3.0);
    let constraint = "rNode.cpu >= vNode.cpu";

    let svc = NetEmbedService::new();
    svc.registry().register("prod", host.clone());
    svc.registry().register("staging", host.clone());
    let mgr = ReservationManager::new();

    for threads in test_workers() {
        // (Re)warm both hosts' cache entries for this worker count's
        // first iteration; later iterations reuse them.
        let prod = svc
            .submit(&request("prod", &query, constraint, threads))
            .unwrap();
        assert!(!prod.mappings().is_empty());
        svc.submit(&request("staging", &query, constraint, threads))
            .unwrap();

        // Reserve on prod: cpu drops 4→1 on two nodes, epoch bumps.
        let ticket = mgr
            .reserve(
                svc.registry(),
                "prod",
                &query,
                &prod.mappings()[0],
                &["cpu"],
            )
            .unwrap();

        // Staging still hits; prod rebuilds against the reduced model
        // (and the answer reflects the reservation: fewer placements).
        let staging_warm = svc
            .submit(&request("staging", &query, constraint, threads))
            .unwrap();
        assert_eq!(
            staging_warm.stats.filter_cache_hits, 1,
            "staging invalidated by prod reservation (threads {threads})"
        );
        let prod_after = svc
            .submit(&request("prod", &query, constraint, threads))
            .unwrap();
        assert_eq!(
            prod_after.stats.filter_cache_hits, 0,
            "prod served a pre-reservation filter (threads {threads})"
        );
        assert!(
            prod_after.mappings().len() < prod.mappings().len(),
            "reservation must shrink the feasible set (threads {threads})"
        );

        // Release restores capacity for the next worker-count round.
        mgr.release(svc.registry(), ticket.ticket).unwrap();
    }
}

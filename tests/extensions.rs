//! Integration tests for the §VIII extension features working together:
//! link→path mapping, time-window scheduling, partitioned processing and
//! automorphism compression.

use netembed::automorph::{compress_orbits, query_automorphisms};
use netembed::pathmap::{check_path_mapping, search_paths, PathPolicy};
use netembed::{Deadline, Engine, Options};
use netgraph::{Direction, Network, NodeId};
use service::{Locality, PartitionedHost, Scheduler};
use topogen::{transit_stub, TransitStubParams};

fn fabric(seed: u64) -> Network {
    let mut f = transit_stub(
        &TransitStubParams {
            transit: 3,
            stubs_per_transit: 2,
            stub_size: 4,
            stub_extra_edge_prob: 0.5,
        },
        &mut topogen::rng(seed),
    );
    for n in f.node_ids().collect::<Vec<_>>() {
        f.set_node_attr(n, "cpu", 4.0);
    }
    f
}

#[test]
fn path_mapping_beats_plain_embedding_on_sparse_fabric() {
    let host = fabric(60);
    // A triangle with generous delay windows: the sparse transit-stub
    // fabric has very few host triangles, so plain embedding usually
    // fails where 2-hop path mapping succeeds.
    let mut q = Network::new(Direction::Undirected);
    let ids: Vec<NodeId> = (0..3).map(|i| q.add_node(format!("q{i}"))).collect();
    for i in 0..3 {
        let e = q.add_edge(ids[i], ids[(i + 1) % 3]);
        q.set_edge_attr(e, "dmin", 0.0);
        q.set_edge_attr(e, "dmax", 200.0);
    }

    let policy = PathPolicy {
        max_hops: 3,
        ..PathPolicy::default()
    };
    let mut dl = Deadline::unlimited();
    let (paths, _) = search_paths(&q, &host, &policy, None, 1, &mut dl).unwrap();
    assert!(
        !paths.is_empty(),
        "path mapping must find a placement on the fabric"
    );
    check_path_mapping(&q, &host, &policy, &paths[0]).unwrap();
}

#[test]
fn scheduler_serializes_conflicting_jobs() {
    // A deliberately tiny fabric (7 nodes) so eight 2-node jobs cannot all
    // run concurrently.
    let mut small = transit_stub(
        &TransitStubParams {
            transit: 1,
            stubs_per_transit: 2,
            stub_size: 3,
            stub_extra_edge_prob: 0.5,
        },
        &mut topogen::rng(61),
    );
    for n in small.node_ids().collect::<Vec<_>>() {
        small.set_node_attr(n, "cpu", 4.0);
    }
    let mut scheduler = Scheduler::new(small, &["cpu"]);
    let mut job = Network::new(Direction::Undirected);
    let a = job.add_node("a");
    let b = job.add_node("b");
    job.add_edge(a, b);
    job.set_node_attr(a, "cpu", 4.0); // takes a whole host node
    job.set_node_attr(b, "cpu", 4.0);
    let constraint = "rNode.cpu >= vNode.cpu && rEdge.avgDelay <= 10.0";

    // Stub LANs have ≤ 5ms links; each stub has 4 nodes. Saturate.
    let mut windows = Vec::new();
    for _ in 0..8 {
        let w = scheduler
            .find_window(&job, constraint, 25, 0, 1_000, &Options::default())
            .expect("eventually a window exists");
        windows.push(w);
    }
    // All grants are capacity-consistent (pairwise overlapping grants
    // never share a host node).
    for i in 0..windows.len() {
        for j in (i + 1)..windows.len() {
            let (wi, wj) = (&windows[i], &windows[j]);
            let overlap = wi.start < wj.end && wj.start < wi.end;
            if overlap {
                let hosts_i: std::collections::HashSet<NodeId> =
                    wi.mapping.iter().map(|(_, r)| r).collect();
                for (_, r) in wj.mapping.iter() {
                    assert!(!hosts_i.contains(&r), "overlapping windows share host {r}");
                }
            }
        }
    }
    // At least one job had to wait (a stub LAN holds at most 2 such jobs).
    assert!(
        windows.iter().any(|w| w.start > 0),
        "saturation never forced a later window"
    );
}

#[test]
fn partitioned_fabric_answers_stub_queries_locally() {
    let host = fabric(62);
    let partitioned = PartitionedHost::new(host, "domain");
    // 6 stub domains + the transit "-1" region.
    assert_eq!(partitioned.region_count(), 7);

    // An intra-LAN edge query (≤ 5ms) lives inside one stub domain.
    let mut q = Network::new(Direction::Undirected);
    let a = q.add_node("a");
    let b = q.add_node("b");
    q.add_edge(a, b);
    let resp = partitioned
        .submit(&q, "rEdge.avgDelay <= 5.0", &Options::default())
        .unwrap();
    assert!(
        matches!(resp.locality, Locality::Region(_)),
        "{:?}",
        resp.locality
    );
    assert!(resp.outcome.found_any());

    // A wide-area query (≥ 20ms) needs transit links: global tier.
    let resp = partitioned
        .submit(&q, "rEdge.avgDelay >= 20.0", &Options::default())
        .unwrap();
    assert!(resp.outcome.found_any());
}

#[test]
fn automorphism_compression_matches_engine_counts() {
    // Ring query into a clique host: solutions = orbits × |Aut(ring)|.
    let mut host = Network::new(Direction::Undirected);
    let ids: Vec<NodeId> = (0..6).map(|i| host.add_node(format!("h{i}"))).collect();
    for i in 0..6 {
        for j in (i + 1)..6 {
            host.add_edge(ids[i], ids[j]);
        }
    }
    let ring = topogen::regular::ring(4);
    let engine = Engine::new(&host);
    let res = engine.embed(&ring, "true", &Options::default()).unwrap();

    let autos = query_automorphisms(&ring, 1_000);
    assert_eq!(autos.order(), 8); // D4
    let orbits = compress_orbits(&res.mappings, &autos);
    // Every orbit is full (host is symmetric), so count × 8 = total.
    assert_eq!(orbits.len() * 8, res.mappings.len());
    for o in &orbits {
        assert_eq!(o.size, 8);
    }
}

#[test]
fn scheduler_plus_partition_round_trip() {
    // Schedule against the residual model of a partitioned fabric: take
    // the model at t=0, partition it, and check both views agree on an
    // easy query's feasibility.
    let base = fabric(63);
    let scheduler = Scheduler::new(base.clone(), &["cpu"]);
    let model = scheduler.model_at(0);
    let partitioned = PartitionedHost::new(model.clone(), "domain");

    let mut q = Network::new(Direction::Undirected);
    let a = q.add_node("a");
    let b = q.add_node("b");
    q.add_edge(a, b);

    let flat = Engine::new(&model)
        .embed(&q, "rEdge.avgDelay <= 5.0", &Options::default())
        .unwrap();
    let part = partitioned
        .submit(&q, "rEdge.avgDelay <= 5.0", &Options::default())
        .unwrap();
    assert_eq!(flat.mappings.is_empty(), !part.outcome.found_any());
}

//! End-to-end feed semantics through the service: a faulty delta
//! stream (drops, duplicates, reorders) must converge to exactly the
//! state a clean stream produces — via resync when the faults exceed
//! what the reorder buffer can absorb — with a balanced delivery
//! ledger; degraded feeds must honour the per-service
//! [`StalenessPolicy`] (marked stale answers within the lag budget,
//! deterministic `StaleModel` sheds past it); and an epoch bump must
//! repair the cached filter instead of rebuilding it — *promoted*
//! across a provably-empty dirty window, *patched in place* across a
//! subtractive one, and rebuilt only when the delta admitted a new
//! candidate. The removal-only churn gate
//! ([`removal_only_churn_patches_without_a_single_rebuild`]) is the CI
//! smoke for the patch path; `NETEMBED_CHURN_FULL=1` lengthens it for
//! the nightly soak.

use netgraph::{AttrValue, Direction, Network, NodeId};
use service::cache::network_fingerprint;
use service::{
    DeltaMutation, DirtySet, FeedConfig, FeedSnapshot, FeedState, NetEmbedService, QueryRequest,
    RegistryDelta, RegistryFeed, ServiceConfig, ServiceError, ShedReason, StalenessPolicy,
};
use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Deterministic mixer for the fault schedule (no RNG dependency).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Five-node path host: `cpu` on nodes, `d` on edges.
fn path_host() -> Network {
    let mut h = Network::new(Direction::Undirected);
    let ids: Vec<_> = (0..5).map(|i| h.add_node(format!("h{i}"))).collect();
    for w in ids.windows(2) {
        let e = h.add_edge(w[0], w[1]);
        h.set_edge_attr(e, "d", 10.0);
    }
    for &n in &ids {
        h.set_node_attr(n, "cpu", 8.0);
    }
    h
}

fn edge_query() -> Network {
    let mut q = Network::new(Direction::Undirected);
    let x = q.add_node("x");
    let y = q.add_node("y");
    q.add_edge(x, y);
    q.set_node_attr(x, "cpu", 3.0);
    q.set_node_attr(y, "cpu", 3.0);
    q
}

fn request(host: &str) -> QueryRequest {
    QueryRequest {
        host: host.into(),
        query: edge_query(),
        constraint: "rNode.cpu >= vNode.cpu".into(),
        options: netembed::Options::default(),
    }
}

/// A `cpu` bump on `node` covering sequence `seq → seq + 1`.
fn cpu_delta(seq: u64, node: u32, value: f64) -> RegistryDelta {
    RegistryDelta {
        host: "h".into(),
        base_seq: seq,
        next_seq: seq + 1,
        mutation: DeltaMutation::SetNodeAttr {
            node,
            attr: "cpu".into(),
            value: AttrValue::Num(value),
        },
        dirty: DirtySet::from_ids([node]),
    }
}

fn apply_truth(net: &mut Network, delta: &RegistryDelta) {
    match &delta.mutation {
        DeltaMutation::SetNodeAttr { node, attr, value } => {
            net.set_node_attr(NodeId(*node), attr.as_str(), value.clone());
        }
        other => unreachable!("truth replay only scripts attr sets, got {other:?}"),
    }
}

/// A scripted stream that hands out at most `chunk` deltas per pump
/// (each `None` ends one pump's drain; the next pump resumes), and
/// publishes the highest `next_seq` it has emitted so the snapshot
/// source can serve the matching upstream state.
struct ChunkedStream {
    script: Vec<RegistryDelta>,
    pos: usize,
    chunk: usize,
    served_this_burst: usize,
    emitted_hwm: Rc<Cell<u64>>,
}

impl service::DeltaStream for ChunkedStream {
    fn next_delta(&mut self) -> Option<RegistryDelta> {
        if self.served_this_burst == self.chunk {
            self.served_this_burst = 0;
            return None;
        }
        let delta = self.script.get(self.pos)?.clone();
        self.pos += 1;
        self.served_this_burst += 1;
        self.emitted_hwm
            .set(self.emitted_hwm.get().max(delta.next_seq));
        Some(delta)
    }
}

/// The acceptance gate for the feed: a stream mangled by seeded drops,
/// duplicates and adjacent swaps converges — through at least one gap
/// resync — to exactly the registry state the clean stream produces,
/// with nothing lost and the delivery ledger balanced.
#[test]
fn faulty_stream_converges_to_the_clean_stream_state() {
    const DELTAS: u64 = 40;
    let base = path_host();
    let clean: Vec<RegistryDelta> = (0..DELTAS)
        .map(|i| cpu_delta(i, (i % 5) as u32, 1.0 + i as f64))
        .collect();
    // Upstream truth after each prefix of the clean stream — what a
    // snapshot at sequence `i` must contain.
    let mut states = vec![base.clone()];
    for delta in &clean {
        let mut next = states.last().unwrap().clone();
        apply_truth(&mut next, delta);
        states.push(next);
    }

    // Clean run: everything in order, no snapshot source ever needed.
    let clean_svc = NetEmbedService::new();
    clean_svc.registry().register("h", base.clone());
    let stream: VecDeque<RegistryDelta> = clean.iter().cloned().collect();
    let mut feed = RegistryFeed::new(
        stream,
        || -> Option<FeedSnapshot> { panic!("clean stream must not resync") },
        FeedConfig::default(),
    );
    assert_eq!(feed.pump(&clean_svc), FeedState::Live);
    let clean_feed = clean_svc.feed_status().snapshot();
    assert_eq!(clean_feed.applied, DELTAS);
    assert_eq!(clean_feed.gap_resyncs, 0);
    assert!(clean_feed.balanced(), "clean ledger: {clean_feed:?}");
    let clean_fp = network_fingerprint(&clean_svc.registry().model("h").unwrap());
    assert_eq!(
        clean_fp,
        network_fingerprint(states.last().unwrap()),
        "clean stream must reproduce the upstream truth"
    );

    // Faulty run: seeded drops (at least one — that forces the gap
    // resync), duplicates and adjacent swaps.
    let mut script = Vec::new();
    let mut i = 0usize;
    let mut dropped = 0u64;
    while i < clean.len() {
        match splitmix64(0xFEED ^ i as u64) % 10 {
            0 | 1 => {
                dropped += 1; // dropped: never emitted
            }
            2 => {
                script.push(clean[i].clone());
                script.push(clean[i].clone()); // duplicated
            }
            3 if i + 1 < clean.len() => {
                script.push(clean[i + 1].clone()); // swapped pair
                script.push(clean[i].clone());
                i += 1;
            }
            _ => script.push(clean[i].clone()),
        }
        i += 1;
    }
    assert!(dropped >= 1, "schedule must include a gap");

    let svc = NetEmbedService::new();
    svc.registry().register("h", base.clone());
    let emitted_hwm = Rc::new(Cell::new(0u64));
    let stream = ChunkedStream {
        script,
        pos: 0,
        chunk: 3,
        served_this_burst: 0,
        emitted_hwm: Rc::clone(&emitted_hwm),
    };
    let snapshot_hwm = Rc::clone(&emitted_hwm);
    let snapshots = move || {
        let seq = snapshot_hwm.get();
        Some(FeedSnapshot {
            seq,
            models: vec![("h".into(), states[seq as usize].clone())],
        })
    };
    let mut feed = RegistryFeed::new(stream, snapshots, FeedConfig::default());
    let mut state = FeedState::Live;
    for _ in 0..200 {
        state = feed.pump(&svc);
        if state == FeedState::Live && feed.cursor() == DELTAS {
            break;
        }
    }
    assert_eq!(state, FeedState::Live, "faulty stream failed to converge");
    assert_eq!(
        feed.cursor(),
        DELTAS,
        "zero lost deltas: cursor reaches the end"
    );

    let feed_tl = svc.telemetry().feed;
    assert!(
        feed_tl.balanced(),
        "delivery ledger unbalanced: {feed_tl:?}"
    );
    assert!(
        feed_tl.gap_resyncs >= 1,
        "a dropped delta must force a resync"
    );
    assert!(feed_tl.duplicates >= 1, "schedule included duplicates");
    assert_eq!(feed_tl.last_applied_seq, DELTAS);
    assert_eq!(feed_tl.lag, 0);
    assert_eq!(
        network_fingerprint(&svc.registry().model("h").unwrap()),
        clean_fp,
        "faulty stream must converge to the clean stream's final state"
    );
}

/// `ServeStale { max_lag }`: while the feed is catching up, answers
/// within the lag budget are served with a [`service::Staleness`]
/// marker (mirrored into `SearchStats::staleness_lag`) on both the
/// direct and the planner path; once the lag exceeds the budget both
/// paths shed deterministically as `StaleModel`.
#[test]
fn serve_stale_marks_within_the_lag_budget_and_sheds_past_it() {
    let svc = NetEmbedService::with_config(
        ServiceConfig::default().staleness(StalenessPolicy::ServeStale { max_lag: 5 }),
    );
    svc.registry().register("h", path_host());
    let req = request("h");
    let fresh = svc.submit(&req).unwrap();
    assert_eq!(fresh.staleness, None, "live feed serves fresh answers");
    assert_eq!(fresh.stats.staleness_lag, 0);

    // A future delta parks: the feed is catching up with lag 3 ≤ 5.
    let mut stream: VecDeque<RegistryDelta> = VecDeque::new();
    stream.push_back(cpu_delta(2, 0, 4.0));
    let config = FeedConfig {
        gap_patience: u32::MAX, // never give the gap up: stay CatchingUp
        ..FeedConfig::default()
    };
    let mut feed = RegistryFeed::new(stream, || -> Option<FeedSnapshot> { None }, config);
    assert_eq!(feed.pump(&svc), FeedState::CatchingUp);
    assert_eq!(svc.feed_status().lag(), 3);

    let marked = svc.submit(&req).unwrap();
    let staleness = marked.staleness.expect("degraded feed must mark answers");
    assert_eq!(staleness.lag, 3);
    assert_eq!(marked.stats.staleness_lag, 3);
    let planned = svc.planner().run(&req).unwrap();
    assert_eq!(planned.staleness.map(|s| s.lag), Some(3));

    // Push the frontier past the budget: lag 9 > 5 ⇒ both paths shed.
    feed.stream().push_back(cpu_delta(8, 0, 5.0));
    assert_eq!(feed.pump(&svc), FeedState::CatchingUp);
    assert_eq!(svc.feed_status().lag(), 9);
    match svc.submit(&req) {
        Err(ServiceError::Overloaded(reason)) => assert_eq!(reason, ShedReason::StaleModel),
        other => panic!("expected a StaleModel shed, got {other:?}"),
    }
    match svc.planner().run(&req) {
        Err(ServiceError::Overloaded(reason)) => assert_eq!(reason, ShedReason::StaleModel),
        other => panic!("expected a StaleModel shed, got {other:?}"),
    }
    let telemetry = svc.telemetry();
    assert_eq!(
        telemetry.shed.stale_model, 1,
        "planner sheds land on the ledger"
    );
    assert_eq!(telemetry.feed.state, FeedState::CatchingUp);
    assert_eq!(telemetry.feed.lag, 9);

    // Heal: deliver the missing chain; the parked deltas drain and the
    // feed goes Live, so answers are fresh again.
    for seq in [0, 1, 3, 4, 5, 6, 7] {
        feed.stream().push_back(cpu_delta(seq, 0, seq as f64));
    }
    assert_eq!(feed.pump(&svc), FeedState::Live);
    assert_eq!(svc.feed_status().lag(), 0);
    let healed = svc.submit(&req).unwrap();
    assert_eq!(healed.staleness, None);
    let feed_tl = svc.telemetry().feed;
    assert_eq!(feed_tl.applied, 9);
    assert!(feed_tl.balanced(), "ledger unbalanced: {feed_tl:?}");
}

/// `Block`: any degradation sheds immediately — no stale answers at
/// all — and recovery restores service.
#[test]
fn block_policy_sheds_any_degraded_answer() {
    let svc =
        NetEmbedService::with_config(ServiceConfig::default().staleness(StalenessPolicy::Block));
    svc.registry().register("h", path_host());
    let req = request("h");
    assert!(svc.submit(&req).is_ok(), "live feed serves normally");

    let mut stream: VecDeque<RegistryDelta> = VecDeque::new();
    stream.push_back(cpu_delta(1, 0, 4.0));
    let config = FeedConfig {
        gap_patience: u32::MAX,
        ..FeedConfig::default()
    };
    let mut feed = RegistryFeed::new(stream, || -> Option<FeedSnapshot> { None }, config);
    assert_eq!(feed.pump(&svc), FeedState::CatchingUp);
    match svc.submit(&req) {
        Err(ServiceError::Overloaded(ShedReason::StaleModel)) => {}
        other => panic!("Block must shed while degraded, got {other:?}"),
    }

    feed.stream().push_back(cpu_delta(0, 0, 6.0));
    assert_eq!(feed.pump(&svc), FeedState::Live);
    assert!(svc.submit(&req).is_ok(), "recovered feed serves again");
}

/// Build a fresh filter for `req` against the registry's *current*
/// model of `host` — the ground truth a repaired cache entry must be
/// bitwise equal to.
fn fresh_filter(svc: &NetEmbedService, req: &QueryRequest) -> netembed::FilterMatrix {
    let model = svc.registry().model(&req.host).expect("host registered");
    let problem =
        netembed::Problem::new(&req.query, &model, &req.constraint).expect("valid constraint");
    let mut deadline = netembed::Deadline::unlimited();
    let mut stats = netembed::SearchStats::default();
    netembed::FilterMatrix::build(&problem, &mut deadline, &mut stats).expect("fresh build")
}

/// The cache entry for `req` at the registry's current epoch.
fn cached_filter(
    svc: &NetEmbedService,
    req: &QueryRequest,
) -> std::sync::Arc<netembed::FilterMatrix> {
    let key = service::FilterKey {
        host: req.host.clone(),
        epoch: svc.registry().epoch(&req.host).unwrap(),
        query_hash: network_fingerprint(&req.query),
        constraint: req.constraint.clone(),
    };
    svc.cache()
        .lookup(&key)
        .expect("entry cached at head epoch")
}

/// The promotion acceptance gate: an epoch bump whose dirty window is
/// provably *empty* (a tracked no-op delta) re-keys the cached filter
/// — the warm resubmit hits with zero new misses and zero patch work.
#[test]
fn empty_window_epoch_bump_promotes_instead_of_rebuilding() {
    let svc = NetEmbedService::new();
    svc.registry().register("h", path_host());
    let req = request("h");

    let cold = svc.submit(&req).unwrap();
    assert_eq!(cold.stats.filter_cache_hits, 0);
    let epoch_before = svc.registry().epoch("h").unwrap();

    // Bump the epoch with an empty (but tracked) dirty set: nothing
    // about the model a filter can see changed.
    svc.registry()
        .update_dirty("h", DirtySet::new(), |_net| {})
        .unwrap();
    assert_ne!(svc.registry().epoch("h").unwrap(), epoch_before);

    let misses_before = svc.cache().misses();
    let warm = svc.submit(&req).unwrap();
    assert_eq!(
        warm.stats.filter_cache_hits, 1,
        "promotion must serve a hit"
    );
    assert_eq!(warm.stats.patches, 0, "an empty window needs no patch");
    assert_eq!(svc.cache().misses(), misses_before, "no rebuild");
    assert_eq!(svc.cache().promotions(), 1);
    assert_eq!(svc.cache().patches(), 0);
}

/// The patch acceptance gate: an epoch bump with a *non-empty* tracked
/// dirty window repairs the cached filter in place — the warm resubmit
/// hits with zero new misses whether or not the delta touched a
/// candidate — while a delta that *admits* a new candidate is detected
/// and falls back to a full rebuild, so a repaired entry can never
/// under-approximate the fresh build.
#[test]
fn tracked_epoch_bump_patches_in_place_and_detects_additions() {
    let mut host = path_host();
    // Node 4 is too weak to be a candidate for the cpu-3 query.
    host.set_node_attr(NodeId(4), "cpu", 1.0);
    let svc = NetEmbedService::new();
    svc.registry().register("h", host);
    let req = request("h");

    let cold = svc.submit(&req).unwrap();
    assert_eq!(cold.stats.filter_cache_hits, 0);
    assert_eq!((cold.stats.patches, cold.stats.patch_rebuilds), (0, 0));
    let misses_before = svc.cache().misses();

    // A bump confined to the inadmissible node 4 (cpu 1 → 2, still
    // short of the query's 3): the patch re-checks exactly that node,
    // removes nothing, and re-keys the matrix.
    svc.registry()
        .update_dirty("h", DirtySet::from_ids([4]), |net| {
            net.set_node_attr(NodeId(4), "cpu", 2.0);
        })
        .unwrap();
    let warm = svc.submit(&req).unwrap();
    assert_eq!(warm.stats.filter_cache_hits, 1, "patch must serve a hit");
    assert_eq!(warm.stats.patches, 1);
    assert_eq!(svc.cache().misses(), misses_before, "no rebuild");
    assert_eq!(svc.cache().patches(), 1);
    assert_eq!(
        svc.cache().promotions(),
        0,
        "a non-empty window is patched, never blindly promoted"
    );
    assert!(*cached_filter(&svc, &req) == fresh_filter(&svc, &req));

    // A bump that touches a *candidate* but keeps it admissible
    // (cpu 8 → 7 ≥ 3) also patches: under the old promote-or-rebuild
    // split this was a guaranteed full rebuild.
    svc.registry()
        .update_dirty("h", DirtySet::from_ids([0]), |net| {
            net.set_node_attr(NodeId(0), "cpu", 7.0);
        })
        .unwrap();
    let warm = svc.submit(&req).unwrap();
    assert_eq!(warm.stats.filter_cache_hits, 1, "touching bump patches too");
    assert_eq!(warm.stats.patches, 1);
    assert_eq!(svc.cache().misses(), misses_before);
    assert_eq!(svc.cache().patches(), 2);
    assert!(*cached_filter(&svc, &req) == fresh_filter(&svc, &req));

    // Regression (additive soundness): a delta that makes node 4
    // *admissible* cannot be expressed by in-place removal — the patch
    // must detect the addition and fall back to a rebuild whose
    // solution set actually contains the new candidate. The old epoch
    // promotion would have re-keyed the stale matrix here and silently
    // dropped these mappings.
    svc.registry()
        .update_dirty("h", DirtySet::from_ids([4]), |net| {
            net.set_node_attr(NodeId(4), "cpu", 9.0);
        })
        .unwrap();
    let rebuilt = svc.submit(&req).unwrap();
    assert_eq!(
        rebuilt.stats.filter_cache_hits, 0,
        "an additive delta must rebuild"
    );
    assert_eq!(rebuilt.stats.patch_rebuilds, 1);
    assert_eq!(svc.cache().patch_rebuilds(), 1);
    assert_eq!(svc.cache().misses(), misses_before + 1);
    let mappings = match &rebuilt.outcome {
        netembed::Outcome::Complete(m) => m,
        other => panic!("expected a complete run, got {other:?}"),
    };
    assert!(
        mappings
            .iter()
            .any(|m| m.iter().any(|(_, r)| r == NodeId(4))),
        "the rebuild must see the newly admissible node"
    );
}

/// Churn rounds for the removal-only gate: CI smoke by default, the
/// long nightly soak when `NETEMBED_CHURN_FULL` is set.
fn churn_rounds() -> usize {
    if std::env::var("NETEMBED_CHURN_FULL").is_ok_and(|v| !v.is_empty() && v != "0") {
        400
    } else {
        40
    }
}

/// The churn acceptance gate (CI smoke; `NETEMBED_CHURN_FULL=1` for
/// the nightly soak): a sustained stream of removal-only deltas —
/// host capacities only ever shrink — against a warm service keeps the
/// filter cache repaired **in place**: every warm resubmit hits, the
/// miss counter never moves after the cold build, every round is a
/// patch (zero fallbacks), and the patched matrix stays bitwise equal
/// to a from-scratch build at that epoch.
#[test]
fn removal_only_churn_patches_without_a_single_rebuild() {
    let mut host = Network::new(Direction::Undirected);
    let n = 24;
    let ids: Vec<_> = (0..n).map(|i| host.add_node(format!("h{i}"))).collect();
    for w in ids.windows(2) {
        host.add_edge(w[0], w[1]);
    }
    // Close the ring so stripping nodes never disconnects the ends.
    host.add_edge(ids[n - 1], ids[0]);
    for &id in &ids {
        host.set_node_attr(id, "cpu", 8.0);
    }
    let svc = NetEmbedService::new();
    svc.registry().register("h", host);
    let req = request("h");

    let cold = svc.submit(&req).unwrap();
    assert_eq!(cold.stats.filter_cache_hits, 0);
    let misses_after_cold = svc.cache().misses();

    let rounds = churn_rounds();
    for round in 0..rounds {
        // Degrade one node per round, round-robin, each time lower
        // than before: the first lap drops each node below the query's
        // cpu-3 floor (a real candidate removal), later laps keep
        // shrinking already-infeasible nodes (a no-op repair). Leave
        // two adjacent nodes untouched so the query stays feasible.
        let victim = round % (n - 2);
        let value = 2.0 / (1.0 + (round / (n - 2)) as f64);
        svc.registry()
            .update_dirty("h", DirtySet::from_ids([victim as u32]), |net| {
                net.set_node_attr(NodeId(victim as u32), "cpu", value);
            })
            .unwrap();
        let warm = svc.submit(&req).unwrap();
        assert_eq!(
            warm.stats.filter_cache_hits, 1,
            "round {round}: churn under removal-only deltas must stay warm"
        );
        assert_eq!(warm.stats.patches, 1, "round {round}: every bump patches");
        assert_eq!(
            svc.cache().misses(),
            misses_after_cold,
            "round {round}: a removal-only delta must never rebuild"
        );
        match &warm.outcome {
            netembed::Outcome::Complete(m) => assert!(
                !m.is_empty(),
                "round {round}: the untouched ring segment keeps the query feasible"
            ),
            other => panic!("round {round}: expected a complete run, got {other:?}"),
        }
    }
    assert_eq!(svc.cache().patches(), rounds as u64);
    assert_eq!(svc.cache().patch_rebuilds(), 0);
    assert_eq!(svc.cache().promotions(), 0);
    // The end state of the whole churn run is exactly what a cold
    // build at the final epoch produces.
    assert!(
        *cached_filter(&svc, &req) == fresh_filter(&svc, &req),
        "patched matrix diverged from the fresh build"
    );
    let telemetry = svc.telemetry();
    assert_eq!(telemetry.filter_cache_patches, rounds as u64);
    assert_eq!(telemetry.filter_cache_patch_rebuilds, 0);
}

/// The hierarchy promotion gate: a coarsened substrate memoized under
/// a superseded epoch is re-keyed across a provably-empty dirty window
/// instead of being rebuilt — the warm hierarchical resubmit hits.
#[test]
fn empty_window_epoch_bump_promotes_the_hierarchy() {
    let svc = NetEmbedService::new();
    svc.registry().register("h", path_host());
    let mut req = request("h");
    req.options.hierarchy = Some(netembed::HierarchySpec {
        min_nodes: 2,
        ..netembed::HierarchySpec::default()
    });

    let cold = svc.submit(&req).unwrap();
    assert_eq!(cold.stats.hierarchy_cache_hits, 0);
    assert_eq!(svc.hierarchy_cache().misses(), 1);

    svc.registry()
        .update_dirty("h", DirtySet::new(), |_net| {})
        .unwrap();
    let warm = svc.submit(&req).unwrap();
    assert_eq!(
        warm.stats.hierarchy_cache_hits, 1,
        "promoted coarsening must serve a hit"
    );
    assert_eq!(
        svc.hierarchy_cache().misses(),
        1,
        "an empty window must not rebuild the coarsening"
    );
    assert_eq!(svc.hierarchy_cache().promotions(), 1);
    assert_eq!(svc.telemetry().hierarchy_promotions, 1);
}

/// Regression: removing a model must drop its cached filters with it —
/// a later re-register under the same name must not find ghosts.
#[test]
fn remove_model_evicts_the_hosts_cache_entries() {
    let svc = NetEmbedService::new();
    svc.registry().register("a", path_host());
    svc.registry().register("b", path_host());
    svc.submit(&request("a")).unwrap();
    svc.submit(&request("b")).unwrap();
    assert_eq!(svc.cache().len(), 2);

    let removed = svc.remove_model("a");
    assert!(removed.is_some(), "remove returns the evicted model");
    assert!(svc.registry().model("a").is_none());
    assert_eq!(svc.cache().len(), 1, "host a's filters must leave with it");
    assert!(svc.remove_model("a").is_none(), "second remove is a no-op");
    assert_eq!(svc.cache().len(), 1, "no collateral eviction of host b");
    assert!(svc.submit(&request("b")).is_ok(), "host b unaffected");
}

//! Scaled-down versions of the paper's evaluation scenarios (§VII),
//! asserting the qualitative claims rather than absolute timings.

use netembed::{Algorithm, Engine, Options, Outcome, SearchMode};
use std::time::Duration;
use topogen::{
    assign_composite_windows, clique_query, composite_query, make_infeasible, subgraph_query,
    CompositeSpec, Level, PlanetlabParams, SubgraphParams, CLIQUE_CONSTRAINT,
};

fn small_planetlab(seed: u64) -> netgraph::Network {
    topogen::planetlab_like(
        &PlanetlabParams {
            sites: 40,
            measured_prob: 0.7,
            clusters: 4,
        },
        &mut topogen::rng(seed),
    )
}

/// §VII-B: subgraph queries always embed (they were sampled from the
/// host), and the time to first match is no greater than all-matches.
#[test]
fn subgraph_queries_always_feasible() {
    let host = small_planetlab(500);
    for n in [5usize, 8, 12] {
        let wl = subgraph_query(
            &host,
            &SubgraphParams {
                n,
                edge_keep: 0.4,
                slack: 0.02,
            },
            &mut topogen::rng(501 + n as u64),
        );
        let engine = Engine::new(&host);
        let all = engine
            .embed(&wl.query, &wl.constraint, &Options::default())
            .unwrap();
        assert!(!all.mappings.is_empty(), "n={n}");
        let first = engine
            .embed(
                &wl.query,
                &wl.constraint,
                &Options {
                    mode: SearchMode::First,
                    ..Options::default()
                },
            )
            .unwrap();
        assert_eq!(first.mappings.len(), 1);
        assert!(
            first.stats.nodes_visited <= all.stats.nodes_visited,
            "first-match visited more nodes than all-matches"
        );
    }
}

/// §VII-B (Fig 10): infeasible variants terminate with a definitive no.
#[test]
fn infeasible_variants_definitive_for_all_algorithms() {
    let host = small_planetlab(510);
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 8,
            edge_keep: 0.4,
            slack: 0.02,
        },
        &mut topogen::rng(511),
    );
    let bad = make_infeasible(&wl, 0.2, &mut topogen::rng(512));
    for algorithm in [Algorithm::Ecf, Algorithm::Rwb, Algorithm::Lns] {
        let engine = Engine::new(&host);
        let res = engine
            .embed(
                &bad.query,
                &bad.constraint,
                &Options {
                    algorithm,
                    ..Options::default()
                },
            )
            .unwrap();
        assert!(res.outcome.definitively_infeasible(), "{algorithm:?}");
    }
}

/// §VII-D (Fig 13): small cliques with the 10–100 ms window embed, and
/// LNS finds the first clique match while enumerating-all on larger
/// cliques becomes expensive (we check the solution explosion).
#[test]
fn clique_queries_solution_explosion() {
    let host = small_planetlab(520);
    let engine = Engine::new(&host);
    let mut counts = Vec::new();
    for k in [2usize, 3, 4] {
        let wl = clique_query(k, 10.0, 150.0);
        let res = engine
            .embed(
                &wl.query,
                &wl.constraint,
                &Options {
                    timeout: Some(Duration::from_secs(20)),
                    ..Options::default()
                },
            )
            .unwrap();
        counts.push(res.mappings.len());
    }
    // Monotone explosive growth (k=2 counts each edge twice, etc.).
    assert!(counts[0] > 0);
    assert!(counts[1] > counts[0]);
    // Clique solution sets are automorphism-closed: k! divides the count.
    assert_eq!(counts[1] % 6, 0);
    assert_eq!(counts[2] % 24, 0);
}

/// §VII-D (Fig 13b/14): on regular, under-constrained queries LNS's
/// first-match search visits far fewer states than ECF's, because it
/// needs no filter-matrix pass over every (query edge, host edge) pair.
#[test]
fn lns_cheaper_to_first_match_on_cliques() {
    let host = small_planetlab(530);
    let engine = Engine::new(&host);
    let wl = clique_query(4, 10.0, 150.0);
    let ecf = engine
        .embed(
            &wl.query,
            &wl.constraint,
            &Options {
                mode: SearchMode::First,
                ..Options::default()
            },
        )
        .unwrap();
    let lns = engine
        .embed(
            &wl.query,
            &wl.constraint,
            &Options {
                algorithm: Algorithm::Lns,
                mode: SearchMode::First,
                ..Options::default()
            },
        )
        .unwrap();
    assert_eq!(ecf.mappings.len(), 1);
    assert_eq!(lns.mappings.len(), 1);
    assert!(
        lns.stats.constraint_evals < ecf.stats.constraint_evals,
        "LNS evals {} !< ECF evals {}",
        lns.stats.constraint_evals,
        ecf.stats.constraint_evals
    );
}

/// §VII-D (Fig 14): composite queries embed under the regular per-tier
/// windows, and every returned placement respects both tiers.
#[test]
fn composite_queries_embed_with_tier_windows() {
    let host = small_planetlab(540);
    let spec = CompositeSpec {
        root: Level::Ring,
        groups: 3,
        leaf: Level::Star,
        group_size: 3,
    };
    let mut q = composite_query(&spec);
    assign_composite_windows(&mut q, (75.0, 350.0), (1.0, 75.0));
    let engine = Engine::new(&host);
    let res = engine
        .embed(
            &q,
            CLIQUE_CONSTRAINT,
            &Options {
                algorithm: Algorithm::Lns,
                mode: SearchMode::First,
                timeout: Some(Duration::from_secs(20)),
                ..Options::default()
            },
        )
        .unwrap();
    if let Some(m) = res.mappings.first() {
        // Independent verification re-checks the tier windows per edge.
        let p = netembed::Problem::new(&q, &host, CLIQUE_CONSTRAINT).unwrap();
        netembed::check_mapping(&p, m).unwrap();
    } else {
        // Small hosts occasionally cannot fit 9 nodes with both tiers;
        // that must then be a *definitive* no, not a timeout.
        assert!(matches!(res.outcome, Outcome::Complete(_)));
    }
}

/// §VII-E (Fig 15): timeout classification — a microscopic budget yields
/// Inconclusive on a large query, a generous budget yields Complete.
#[test]
fn outcome_classification_tracks_budget() {
    let host = small_planetlab(550);
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 10,
            edge_keep: 0.5,
            slack: 0.05,
        },
        &mut topogen::rng(551),
    );
    let engine = Engine::new(&host);
    let tight = engine
        .embed(
            &wl.query,
            &wl.constraint,
            &Options {
                timeout: Some(Duration::ZERO),
                ..Options::default()
            },
        )
        .unwrap();
    assert!(matches!(tight.outcome, Outcome::Inconclusive));
    let generous = engine
        .embed(
            &wl.query,
            &wl.constraint,
            &Options {
                timeout: Some(Duration::from_secs(30)),
                ..Options::default()
            },
        )
        .unwrap();
    assert!(matches!(generous.outcome, Outcome::Complete(_)));
}

/// §VIII: parallel ECF returns the identical solution set on a paper-like
/// workload.
#[test]
fn parallel_ecf_equals_sequential_on_planetlab_workload() {
    let host = small_planetlab(560);
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 7,
            edge_keep: 0.6,
            slack: 0.03,
        },
        &mut topogen::rng(561),
    );
    let engine = Engine::new(&host);
    let mut seq = engine
        .embed(&wl.query, &wl.constraint, &Options::default())
        .unwrap()
        .mappings;
    let mut par = engine
        .embed(
            &wl.query,
            &wl.constraint,
            &Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                ..Options::default()
            },
        )
        .unwrap()
        .mappings;
    seq.sort_by_key(|m| m.as_slice().to_vec());
    par.sort_by_key(|m| m.as_slice().to_vec());
    assert_eq!(seq, par);
}

//! End-to-end pipeline: generate → serialize (GraphML) → parse → embed →
//! verify, crossing every crate boundary in the workspace.

use netembed::{Engine, Options, SearchMode};
use topogen::{subgraph_query, PlanetlabParams, SubgraphParams};

#[test]
fn generate_serialize_parse_embed_verify() {
    // Generate a host and a planted query.
    let host = topogen::planetlab_like(
        &PlanetlabParams {
            sites: 40,
            measured_prob: 0.75,
            clusters: 3,
        },
        &mut topogen::rng(100),
    );
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 8,
            edge_keep: 0.4,
            slack: 0.02,
        },
        &mut topogen::rng(101),
    );

    // Round-trip both networks through GraphML.
    let host2 = graphml::from_str(&graphml::to_string(&host)).expect("host round-trip");
    let query2 = graphml::from_str(&graphml::to_string(&wl.query)).expect("query round-trip");
    assert_eq!(host.node_count(), host2.node_count());
    assert_eq!(host.edge_count(), host2.edge_count());
    assert_eq!(wl.query.edge_count(), query2.edge_count());

    // Embed the parsed query into the parsed host.
    let engine = Engine::new(&host2);
    let result = engine
        .embed(&query2, &wl.constraint, &Options::default())
        .expect("well-formed problem");
    assert!(
        !result.mappings.is_empty(),
        "planted query must embed after GraphML round-trip"
    );

    // Verify every mapping independently.
    let problem = netembed::Problem::new(&query2, &host2, &wl.constraint).unwrap();
    for m in &result.mappings {
        netembed::check_mapping(&problem, m).expect("engine returned infeasible mapping");
    }
}

#[test]
fn planted_ground_truth_is_among_ecf_solutions() {
    let host = topogen::planetlab_like(
        &PlanetlabParams {
            sites: 30,
            measured_prob: 0.8,
            clusters: 3,
        },
        &mut topogen::rng(102),
    );
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 6,
            edge_keep: 1.0,
            slack: 0.01,
        },
        &mut topogen::rng(103),
    );
    let gt = wl.ground_truth.clone().expect("planted query");
    let engine = Engine::new(&host);
    let result = engine
        .embed(&wl.query, &wl.constraint, &Options::default())
        .unwrap();
    let found = result
        .mappings
        .iter()
        .any(|m| m.as_slice() == gt.as_slice());
    assert!(found, "ECF all-matches must include the planted embedding");
}

#[test]
fn brite_host_pipeline() {
    let host = topogen::brite_like(
        &topogen::BriteParams::paper_default(120),
        &mut topogen::rng(104),
    );
    let wl = subgraph_query(
        &host,
        &SubgraphParams {
            n: 10,
            edge_keep: 1.0,
            slack: 0.05,
        },
        &mut topogen::rng(105),
    );
    let engine = Engine::new(&host);
    let result = engine
        .embed(
            &wl.query,
            &wl.constraint,
            &Options {
                mode: SearchMode::First,
                ..Options::default()
            },
        )
        .unwrap();
    assert_eq!(result.mappings.len(), 1);
    let problem = netembed::Problem::new(&wl.query, &host, &wl.constraint).unwrap();
    netembed::check_mapping(&problem, &result.mappings[0]).unwrap();
}

//! Concurrency harness for the cross-request planner: many client
//! threads, mixed request keys, interleaved epoch bumps — and the
//! invariant that makes the planner trustworthy: **every result is
//! identical to an isolated sequential submit of the same request**
//! (same mappings, same outcome), no matter how requests were grouped,
//! coalesced or reordered.
//!
//! Also proves the amortization claims by counters: a burst of N
//! equivalent concurrent requests performs exactly one filter build
//! (`Σ filter_cache_hits + Σ coalesced_requests == N − 1`), concurrent
//! cold `submit`s dedup to one build through the cache's in-flight
//! table, and warm planner dispatch spawns zero threads
//! (`ServiceTelemetry::spawned_total` frozen).
//!
//! Worker counts honour `NETEMBED_TEST_WORKERS` (CI pins 1–4), like
//! `tests/epoch_cache.rs`.

use netembed::{Algorithm, Options, Outcome, SearchMode};
use netgraph::{Direction, Network};
use proptest::prelude::*;
use service::cache::{network_fingerprint, FilterFetch, FilterKey};
use service::{AdmissionPolicy, NetEmbedService, PlannedRequest, QueryResponse, ServiceConfig};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Worker counts exercised by the parallel-member tests. CI pins this
/// via `NETEMBED_TEST_WORKERS` so the persistent-pool path runs even on
/// single-core runners.
fn test_workers() -> Vec<usize> {
    match std::env::var("NETEMBED_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => vec![n],
        _ => vec![1, 2, 4],
    }
}

/// Six hosts in a ring + chords with spread-out delays: enough mappings
/// to make coalesced runs meaningful, small enough to enumerate fast.
fn ring_host(delay_scale: f64) -> Network {
    let mut h = Network::new(Direction::Undirected);
    let ids: Vec<_> = (0..6).map(|i| h.add_node(format!("h{i}"))).collect();
    for i in 0..6 {
        let e = h.add_edge(ids[i], ids[(i + 1) % 6]);
        h.set_edge_attr(e, "avgDelay", delay_scale * (10.0 + i as f64 * 5.0));
    }
    for (u, v) in [(0usize, 2), (1, 4), (3, 5)] {
        let e = h.add_edge(ids[u], ids[v]);
        h.set_edge_attr(e, "avgDelay", delay_scale * 12.0);
    }
    h
}

fn edge_query() -> Network {
    let mut q = Network::new(Direction::Undirected);
    let x = q.add_node("x");
    let y = q.add_node("y");
    q.add_edge(x, y);
    q
}

fn path_query() -> Network {
    let mut q = Network::new(Direction::Undirected);
    let a = q.add_node("a");
    let b = q.add_node("b");
    let c = q.add_node("c");
    q.add_edge(a, b);
    q.add_edge(b, c);
    q
}

/// The ground truth: the same request, alone, on a fresh service built
/// from the same models.
fn isolated_submit(models: &[(&str, Network)], req: &PlannedRequest) -> QueryResponse {
    let svc = NetEmbedService::new();
    for (name, model) in models {
        svc.registry().register(name, model.clone());
    }
    svc.submit(req).expect("isolated submit succeeds")
}

/// Order-insensitive view of a response's mappings (parallel runs emit
/// in scheduling order).
fn sorted_mappings(resp: &QueryResponse) -> Vec<Vec<(u32, u32)>> {
    let mut out: Vec<Vec<(u32, u32)>> = resp
        .mappings()
        .iter()
        .map(|m| m.iter().map(|(q, r)| (q.0, r.0)).collect())
        .collect();
    out.sort();
    out
}

#[test]
fn burst_of_identical_requests_builds_once_and_coalesces() {
    const N: usize = 8;
    let host = ring_host(1.0);
    let svc = NetEmbedService::new();
    svc.registry().register("plab", host.clone());
    let planner = svc.planner();
    let req = PlannedRequest {
        host: "plab".into(),
        query: edge_query(),
        constraint: "rEdge.avgDelay <= 20.0".into(),
        options: Options::default(),
    };
    let expected = isolated_submit(&[("plab", host)], &req);
    assert!(!expected.mappings().is_empty(), "scenario must be feasible");

    let barrier = Barrier::new(N);
    let responses: Vec<QueryResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    planner.run(&req).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Identity: every concurrent result equals the isolated sequential
    // one, bit for bit (ECF is deterministic, so plain Vec equality).
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.mappings(), expected.mappings(), "client {i} diverged");
        assert_eq!(resp.outcome, expected.outcome, "client {i} outcome");
    }

    // Amortization, proven by counters under *every* interleaving: each
    // request either built (exactly one did), hit the shared cache, or
    // rode a group-mate's pin — the latter two partition the other N−1.
    let builds = responses
        .iter()
        .filter(|r| r.stats.constraint_evals > 0)
        .count();
    assert_eq!(builds, 1, "a burst must perform exactly one filter build");
    let hits: u64 = responses.iter().map(|r| r.stats.filter_cache_hits).sum();
    let coalesced: u64 = responses.iter().map(|r| r.stats.coalesced_requests).sum();
    assert_eq!(
        hits + coalesced,
        (N - 1) as u64,
        "hits ({hits}) + coalesced ({coalesced}) must cover the other N-1"
    );
    assert_eq!(svc.cache().misses(), 1, "one designated builder");
    assert_eq!(planner.coalesced_total(), coalesced);
    // Nothing left behind.
    assert_eq!(planner.pending_requests(), 0);
    assert_eq!(planner.pending_groups(), 0);
    assert_eq!(planner.undelivered_results(), 0);
}

#[test]
fn concurrent_cold_submits_dedup_to_one_build() {
    // No planner at all: raw `submit` concurrency exercises the filter
    // cache's in-flight table. Deterministic thanks to the cache's
    // register-then-reprobe protocol: a successful concurrent build is
    // never repeated, so exactly one miss no matter the interleaving.
    const N: usize = 4;
    let host = ring_host(1.0);
    let svc = NetEmbedService::new();
    svc.registry().register("plab", host.clone());
    let req = PlannedRequest {
        host: "plab".into(),
        query: edge_query(),
        constraint: "rEdge.avgDelay <= 20.0".into(),
        options: Options::default(),
    };
    let expected = isolated_submit(&[("plab", host)], &req);

    let barrier = Barrier::new(N);
    let responses: Vec<QueryResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    svc.submit(&req).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for resp in &responses {
        assert_eq!(resp.mappings(), expected.mappings());
        assert_eq!(resp.outcome, expected.outcome);
    }
    let builds = responses
        .iter()
        .filter(|r| r.stats.constraint_evals > 0)
        .count();
    assert_eq!(builds, 1, "in-flight dedup must leave exactly one builder");
    assert_eq!(svc.cache().misses(), 1);
    // The other N−1 either waited on the winner's build or arrived
    // after it memoized.
    assert_eq!(
        svc.cache().hits() + svc.cache().dedup_waits(),
        (N - 1) as u64
    );
    let waits: u64 = responses.iter().map(|r| r.stats.dedup_waits).sum();
    assert_eq!(
        waits,
        svc.cache().dedup_waits(),
        "per-run stat mirrors cache"
    );
    assert_eq!(svc.cache().in_flight(), 0);
}

#[test]
fn stress_mixed_keys_matches_isolated_submits() {
    // Single dispatch lane and the full sharded fan-out must both hold
    // the identity invariant — the acceptance pin for the shard layer.
    stress_mixed_keys(1);
    stress_mixed_keys(4);
}

fn stress_mixed_keys(shards: usize) {
    // M client threads × K requests over a menu of distinct grouping
    // keys (two hosts × two queries × two constraints) and distinct
    // per-member options (deterministic algorithms only, so results
    // admit exact comparison). Every response must equal the isolated
    // sequential submit of the same request.
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 5;
    let host_a = ring_host(1.0);
    let host_b = ring_host(2.0);
    let models: Vec<(&str, Network)> = vec![("ha", host_a.clone()), ("hb", host_b.clone())];

    let mut menu: Vec<PlannedRequest> = Vec::new();
    for (host, query, constraint) in [
        ("ha", edge_query(), "rEdge.avgDelay <= 20.0"),
        ("ha", path_query(), "rEdge.avgDelay <= 25.0"),
        ("hb", edge_query(), "rEdge.avgDelay <= 30.0"),
        ("ha", edge_query(), "rEdge.avgDelay <= 12.0"),
    ] {
        menu.push(PlannedRequest {
            host: host.into(),
            query: query.clone(),
            constraint: constraint.into(),
            options: Options::default(),
        });
        menu.push(PlannedRequest {
            host: host.into(),
            query,
            constraint: constraint.into(),
            options: Options {
                algorithm: Algorithm::Rwb,
                mode: SearchMode::First,
                seed: 42,
                ..Options::default()
            },
        });
    }
    let expected: Vec<QueryResponse> = menu
        .iter()
        .map(|req| isolated_submit(&models, req))
        .collect();

    let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(shards));
    for (name, model) in &models {
        svc.registry().register(name, model.clone());
    }
    let planner = svc.planner();
    assert_eq!(planner.shard_count(), shards);
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let planner = &planner;
            let menu = &menu;
            let expected = &expected;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Staggered walk: every thread visits every menu
                    // item, in different orders, so identical keys from
                    // different clients collide in flight.
                    let idx = (t + round * 3) % menu.len();
                    let resp = planner.run(&menu[idx]).unwrap();
                    assert_eq!(
                        resp.mappings(),
                        expected[idx].mappings(),
                        "{shards} shards: client {t} round {round} menu {idx} diverged"
                    );
                    assert_eq!(resp.outcome, expected[idx].outcome);
                }
            });
        }
    });
    // Queue fully drained; at most one build per distinct key; the
    // per-shard ledgers balance and roll up to the global one.
    assert_eq!(planner.pending_requests(), 0);
    assert_eq!(planner.undelivered_results(), 0);
    assert!(svc.cache().misses() <= 8, "more builds than distinct keys");
    let t = svc.telemetry();
    assert_eq!(t.planner_shards, shards);
    assert_eq!(t.accepted + t.shed.total(), t.submitted);
    assert_eq!(
        t.shards.iter().map(|s| s.submitted).sum::<u64>(),
        t.submitted,
        "per-shard submit counters must roll up exactly"
    );
    for shard in &t.shards {
        assert_eq!(shard.accepted + shard.shed.total(), shard.submitted);
        assert_eq!(shard.queue_depth, 0);
    }
}

#[test]
fn distinct_key_groups_dispatch_concurrently() {
    // The tentpole claim, proven by counters: with the planner sharded,
    // two groups with different keys are *in dispatch simultaneously* —
    // not interleaved through one serialized lane. Both keys' filter
    // builds are pinned by holding their cache `BuildTicket`s, so each
    // spawned waiter becomes its shard's dispatcher and parks in the
    // cache's dedup wait; the dispatcher-concurrency gauge must then
    // read 2 at once. Releasing the pins lets both groups finish, and
    // their responses must still equal isolated sequential submits.
    let host = ring_host(1.0);
    let svc = NetEmbedService::with_config(ServiceConfig::default().planner_shards(4));
    svc.registry().register("plab", host.clone());
    let planner = svc.planner();
    assert_eq!(planner.shard_count(), 4);

    let mk = |thr: u32| PlannedRequest {
        host: "plab".into(),
        query: edge_query(),
        constraint: format!("rEdge.avgDelay <= {thr}.0"),
        options: Options::default(),
    };
    let req_a = mk(20);
    let shard_a = planner.shard_for(&req_a).expect("registered host");
    let req_b = (21..120)
        .map(mk)
        .find(|r| planner.shard_for(r).expect("registered host") != shard_a)
        .expect("some constraint must route to another of 4 shards");

    let epoch = svc.registry().epoch("plab").expect("registered host");
    let key_of = |req: &PlannedRequest| FilterKey {
        host: req.host.clone(),
        epoch,
        query_hash: network_fingerprint(&req.query),
        constraint: req.constraint.clone(),
    };
    let pin_a = match svc.cache().fetch_or_build(&key_of(&req_a), None) {
        FilterFetch::MustBuild(ticket) => ticket,
        _ => panic!("cold key A must elect this thread as builder"),
    };
    let pin_b = match svc.cache().fetch_or_build(&key_of(&req_b), None) {
        FilterFetch::MustBuild(ticket) => ticket,
        _ => panic!("cold key B must elect this thread as builder"),
    };

    let expected_a = isolated_submit(&[("plab", host.clone())], &req_a);
    let expected_b = isolated_submit(&[("plab", host.clone())], &req_b);
    assert!(
        !expected_a.mappings().is_empty(),
        "scenario must be feasible"
    );

    let (resp_a, resp_b) = std::thread::scope(|s| {
        let planner_ref = &planner;
        let (ra, rb) = (&req_a, &req_b);
        let client_a = s.spawn(move || planner_ref.run(ra).unwrap());
        let client_b = s.spawn(move || planner_ref.run(rb).unwrap());

        // Two dispatchers — one per shard — must overlap while both are
        // blocked in their dedup waits on the pinned builds.
        let deadline = Instant::now() + Duration::from_secs(30);
        while planner.dispatchers_in_flight() < 2 {
            assert!(
                Instant::now() < deadline,
                "dispatchers never overlapped: distinct-key groups are \
                 being serialized through one lane"
            );
            std::thread::yield_now();
        }
        assert!(planner.peak_concurrent_dispatchers() >= 2);

        // Release the pins: each blocked dispatcher wakes, takes over
        // the abandoned build, and completes its group normally.
        pin_a.abandon();
        pin_b.abandon();
        (client_a.join().unwrap(), client_b.join().unwrap())
    });

    assert_eq!(resp_a.mappings(), expected_a.mappings(), "key A diverged");
    assert_eq!(resp_a.outcome, expected_a.outcome);
    assert_eq!(resp_b.mappings(), expected_b.mappings(), "key B diverged");
    assert_eq!(resp_b.outcome, expected_b.outcome);
    assert_eq!(planner.pending_requests(), 0);
    assert_eq!(planner.undelivered_results(), 0);
    assert_eq!(svc.cache().in_flight(), 0);
}

#[test]
fn hot_key_cannot_starve_cold_key_beyond_dispatch_burst() {
    // Cross-shard fairness pin: with one lane (so hot and cold share
    // it) and `max_dispatch_burst = 2`, a cold-key arrival behind a
    // 6-member hot group waits for at most one burst. The cold waiter
    // becomes the dispatcher: it runs two hot members, re-queues the
    // hot remainder *behind* the cold group, then serves cold — so when
    // `cold.wait()` returns, exactly 4 hot members are still pending.
    const HOT: usize = 6;
    const BURST: usize = 2;
    let host = ring_host(1.0);
    let svc = NetEmbedService::with_config(
        ServiceConfig::default()
            .planner_shards(1)
            .admission(AdmissionPolicy::default().max_dispatch_burst(BURST)),
    );
    svc.registry().register("plab", host.clone());
    let planner = svc.planner();

    let hot_req = PlannedRequest {
        host: "plab".into(),
        query: edge_query(),
        constraint: "rEdge.avgDelay <= 20.0".into(),
        options: Options::default(),
    };
    let cold_req = PlannedRequest {
        host: "plab".into(),
        query: path_query(),
        constraint: "rEdge.avgDelay <= 25.0".into(),
        options: Options::default(),
    };
    let expected_hot = isolated_submit(&[("plab", host.clone())], &hot_req);
    let expected_cold = isolated_submit(&[("plab", host.clone())], &cold_req);

    // Queue the hot burst without waiting (no dispatcher runs yet),
    // then the cold request behind it.
    let hot_tickets: Vec<_> = (0..HOT)
        .map(|_| planner.submit(&hot_req).expect("hot admit"))
        .collect();
    let cold_ticket = planner.submit(&cold_req).expect("cold admit");
    assert_eq!(planner.pending_requests(), HOT + 1);
    assert_eq!(planner.pending_groups(), 2, "hot coalesces to one group");

    let cold_resp = cold_ticket.wait().expect("cold result");
    assert_eq!(cold_resp.mappings(), expected_cold.mappings());
    assert_eq!(cold_resp.outcome, expected_cold.outcome);
    // Fairness evidence: the cold dispatcher ran at most one hot burst
    // before its own group — the rest of the hot members are untouched.
    assert_eq!(
        planner.pending_requests(),
        HOT - BURST,
        "cold waited through more than one hot burst"
    );
    assert_eq!(
        planner.undelivered_results(),
        BURST,
        "exactly one hot burst ran before the cold group"
    );

    for (i, ticket) in hot_tickets.into_iter().enumerate() {
        let resp = ticket.wait().expect("hot result");
        assert_eq!(resp.mappings(), expected_hot.mappings(), "hot member {i}");
        assert_eq!(resp.outcome, expected_hot.outcome);
    }
    // Burst splitting must not break the amortization ledger: the hot
    // key still performs one build, with the other members covered by
    // coalescing or cache hits.
    assert_eq!(planner.pending_requests(), 0);
    assert_eq!(planner.undelivered_results(), 0);
    let t = svc.telemetry();
    assert_eq!(t.submitted, (HOT + 1) as u64);
    assert_eq!(t.accepted, t.submitted, "nothing shed in this scenario");
    assert_eq!(t.shed.total(), 0);
}

#[test]
fn interleaved_epoch_bumps_stay_snapshot_consistent() {
    // A writer flips the model between two versions while clients run.
    // Every response must equal the isolated result for *one* of the
    // two versions — the snapshot its request was enqueued against —
    // never a mixture, never a stale-cache artifact.
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 8;
    let model_a = ring_host(1.0); // generous delays: matches exist
    let model_b = ring_host(10.0); // everything too slow: zero matches
    let req = PlannedRequest {
        host: "churn".into(),
        query: edge_query(),
        constraint: "rEdge.avgDelay <= 20.0".into(),
        options: Options::default(),
    };
    let expect_a = isolated_submit(&[("churn", model_a.clone())], &req);
    let expect_b = isolated_submit(&[("churn", model_b.clone())], &req);
    assert!(!expect_a.mappings().is_empty());
    assert!(expect_b.mappings().is_empty());

    let svc = NetEmbedService::new();
    svc.registry().register("churn", model_a.clone());
    let planner = svc.planner();
    let barrier = Barrier::new(CLIENTS + 1);
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let planner = &planner;
            let req = &req;
            let (expect_a, expect_b) = (&expect_a, &expect_b);
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let resp = planner.run(req).unwrap();
                    let matches_a = resp.mappings() == expect_a.mappings();
                    let matches_b = resp.mappings() == expect_b.mappings();
                    assert!(
                        matches_a || matches_b,
                        "client {t} round {round}: result matches neither model version"
                    );
                    assert!(
                        matches!(resp.outcome, Outcome::Complete(_)),
                        "client {t} round {round}: complete enumeration expected"
                    );
                }
            });
        }
        // The writer: keep bumping while the clients are in flight.
        let svc_ref = &svc;
        let (ma, mb) = (&model_a, &model_b);
        let barrier = &barrier;
        s.spawn(move || {
            barrier.wait();
            for i in 0..CLIENTS * ROUNDS {
                let model = if i % 2 == 0 { mb } else { ma };
                svc_ref.registry().register("churn", model.clone());
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(planner.pending_requests(), 0);
    assert_eq!(planner.undelivered_results(), 0);
}

#[test]
fn parallel_group_members_agree_with_isolated_runs() {
    // Grouped dispatch must not change parallel results either: the
    // solution *set* (order is scheduling-dependent) matches isolated
    // runs at every pinned worker count, and group members share one
    // leased pool.
    for workers in test_workers() {
        const N: usize = 4;
        let host = ring_host(1.0);
        let req = PlannedRequest {
            host: "plab".into(),
            query: edge_query(),
            constraint: "rEdge.avgDelay <= 20.0".into(),
            options: Options {
                algorithm: Algorithm::ParallelEcf { threads: workers },
                ..Options::default()
            },
        };
        let expected = isolated_submit(&[("plab", host.clone())], &req);
        let svc = NetEmbedService::new();
        svc.registry().register("plab", host);
        let planner = svc.planner();
        let barrier = Barrier::new(N);
        let responses: Vec<QueryResponse> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        planner.run(&req).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                sorted_mappings(resp),
                sorted_mappings(&expected),
                "client {i} at {workers} workers diverged"
            );
            assert!(matches!(resp.outcome, Outcome::Complete(_)));
        }
        let builds = responses
            .iter()
            .filter(|r| r.stats.constraint_evals > 0)
            .count();
        assert_eq!(builds, 1, "{workers} workers: burst built more than once");
    }
}

#[test]
fn warm_planner_dispatch_keeps_pool_spawns_frozen() {
    // ROADMAP "scratch-lease tuning" telemetry: after a cold burst
    // spawned the pool, a warm burst must run entirely on parked
    // threads — `spawned_total` frozen between telemetry probes.
    let workers = test_workers().into_iter().max().unwrap_or(2);
    const N: usize = 4;
    let host = ring_host(1.0);
    let svc = NetEmbedService::new();
    svc.registry().register("plab", host);
    let planner = svc.planner();
    let req = PlannedRequest {
        host: "plab".into(),
        query: edge_query(),
        constraint: "rEdge.avgDelay <= 20.0".into(),
        options: Options {
            algorithm: Algorithm::ParallelEcf { threads: workers },
            ..Options::default()
        },
    };
    let burst = |label: &str| -> Vec<QueryResponse> {
        let barrier = Barrier::new(N);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        planner.run(&req).unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .into_iter()
        .inspect(|r| assert!(!r.mappings().is_empty(), "{label}: must embed"))
        .collect()
    };

    burst("cold");
    let warm_before = svc.telemetry();
    assert_eq!(
        warm_before.parked_scratches, 1,
        "serialized dispatch uses one leased scratch"
    );
    assert!(warm_before.spawned_total >= workers as u64);
    assert_eq!(warm_before.pool_threads as u64, warm_before.spawned_total);

    let warm = burst("warm");
    let warm_after = svc.telemetry();
    assert_eq!(
        warm_after.spawned_total, warm_before.spawned_total,
        "warm planner dispatch must spawn no threads"
    );
    assert!(
        warm.iter().any(|r| r.stats.pool_reuse > 0),
        "warm burst never touched a parked pool thread"
    );
    assert!(
        warm.iter().all(|r| r.stats.constraint_evals == 0),
        "warm burst rebuilt a filter"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Group dispatch never changes outcomes: for randomized hosts,
    /// thresholds and request mixes, every planner result equals the
    /// isolated sequential submit of the same request.
    #[test]
    fn random_request_mixes_match_isolated_submits(
        hedges in proptest::collection::vec((0u32..7, 0u32..7, 5u32..60), 4..18),
        thr1 in 8u32..55,
        thr2 in 8u32..55,
        assignment in proptest::collection::vec(0usize..4, 4..14),
        clients in 2usize..4,
    ) {
        // Random undirected host on 7 nodes (self-loops/dupes dropped).
        let mut host = Network::new(Direction::Undirected);
        let ids: Vec<_> = (0..7).map(|i| host.add_node(format!("n{i}"))).collect();
        for &(u, v, d) in &hedges {
            let (u, v) = (ids[(u % 7) as usize], ids[(v % 7) as usize]);
            if u != v && !host.has_edge(u, v) {
                let e = host.add_edge(u, v);
                host.set_edge_attr(e, "avgDelay", d as f64);
            }
        }
        let menu: Vec<PlannedRequest> = vec![
            PlannedRequest {
                host: "h".into(),
                query: edge_query(),
                constraint: format!("rEdge.avgDelay <= {thr1}.0"),
                options: Options::default(),
            },
            PlannedRequest {
                host: "h".into(),
                query: edge_query(),
                constraint: format!("rEdge.avgDelay <= {thr2}.0"),
                options: Options::default(),
            },
            PlannedRequest {
                host: "h".into(),
                query: path_query(),
                constraint: format!("rEdge.avgDelay <= {thr1}.0"),
                options: Options {
                    mode: SearchMode::UpTo(3),
                    ..Options::default()
                },
            },
            PlannedRequest {
                host: "h".into(),
                query: edge_query(),
                constraint: format!("rEdge.avgDelay <= {thr1}.0"),
                options: Options {
                    algorithm: Algorithm::Rwb,
                    mode: SearchMode::First,
                    seed: 7,
                    ..Options::default()
                },
            },
        ];
        let models = vec![("h", host)];
        let expected: Vec<QueryResponse> =
            menu.iter().map(|req| isolated_submit(&models, req)).collect();

        let svc = NetEmbedService::new();
        svc.registry().register("h", models[0].1.clone());
        let planner = svc.planner();
        let failures = std::sync::Mutex::new(Vec::<String>::new());
        std::thread::scope(|s| {
            for t in 0..clients {
                let planner = &planner;
                let (menu, expected) = (&menu, &expected);
                let assignment = &assignment;
                let failures = &failures;
                s.spawn(move || {
                    for (i, &idx) in assignment.iter().enumerate() {
                        if i % clients != t {
                            continue;
                        }
                        let resp = planner.run(&menu[idx]).unwrap();
                        if resp.mappings() != expected[idx].mappings()
                            || resp.outcome != expected[idx].outcome
                        {
                            failures.lock().unwrap().push(format!(
                                "client {t} item {i} (menu {idx}): grouped result diverged"
                            ));
                        }
                    }
                });
            }
        });
        let failures = failures.into_inner().unwrap();
        prop_assert!(failures.is_empty(), "{}", failures.join("; "));
        prop_assert_eq!(planner.pending_requests(), 0);
        prop_assert_eq!(planner.undelivered_results(), 0);
    }
}

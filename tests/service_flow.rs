//! Service-level flows: registration, query, reservation, release,
//! negotiation and monitoring churn — the full Figure-1 architecture.

use netembed::{Algorithm, Options, SearchMode};
use netgraph::{AttrValue, Direction, Network, NodeId};
use service::{
    negotiate, MonitorParams, MonitorSim, NegotiationOutcome, NetEmbedService, QueryRequest,
    ReservationManager,
};

fn host_with_capacity() -> Network {
    let mut h = Network::new(Direction::Undirected);
    let nodes: Vec<NodeId> = (0..8).map(|i| h.add_node(format!("h{i}"))).collect();
    for (i, &n) in nodes.iter().enumerate() {
        h.set_node_attr(n, "cpu", 4.0);
        h.set_node_attr(
            n,
            "osType",
            if i % 2 == 0 { "linux-2.6" } else { "freebsd-5" },
        );
    }
    for i in 0..8 {
        for j in (i + 1)..8 {
            let e = h.add_edge(nodes[i], nodes[j]);
            h.set_edge_attr(e, "avgDelay", (5 + 7 * ((i + j) % 5)) as f64);
        }
    }
    h
}

fn cpu_query(demand: f64) -> Network {
    let mut q = Network::new(Direction::Undirected);
    let a = q.add_node("a");
    let b = q.add_node("b");
    q.add_edge(a, b);
    q.set_node_attr(a, "cpu", demand);
    q.set_node_attr(b, "cpu", demand);
    q
}

#[test]
fn reserve_until_exhaustion_then_release() {
    let svc = NetEmbedService::new();
    svc.registry().register("t", host_with_capacity());
    let mgr = ReservationManager::new();
    let query = cpu_query(3.0);
    let constraint = "rNode.cpu >= vNode.cpu";
    let request = QueryRequest {
        host: "t".into(),
        query: query.clone(),
        constraint: constraint.into(),
        options: Options {
            mode: SearchMode::First,
            ..Options::default()
        },
    };

    // Each reservation takes 3 of 4 cpu units on two hosts; 8 hosts allow
    // 4 slices before exhaustion.
    let mut tickets = Vec::new();
    for i in 0..4 {
        let resp = svc.submit(&request).unwrap();
        assert!(!resp.mappings().is_empty(), "slice {i} should fit");
        let t = mgr
            .reserve(svc.registry(), "t", &query, &resp.mappings()[0], &["cpu"])
            .unwrap();
        tickets.push(t.ticket);
    }
    // Fifth slice: every node is down to 1 cpu unit.
    let resp = svc.submit(&request).unwrap();
    assert!(resp.mappings().is_empty());
    assert!(resp.outcome.definitively_infeasible());

    // Release one slice and retry.
    mgr.release(svc.registry(), tickets[0]).unwrap();
    let resp = svc.submit(&request).unwrap();
    assert!(
        !resp.mappings().is_empty(),
        "capacity restored after release"
    );
}

#[test]
fn negotiation_against_service_model() {
    let svc = NetEmbedService::new();
    svc.registry().register("t", host_with_capacity());
    let q = cpu_query(0.0);
    // Delay values in the host are 5..33; a 1ms budget fails, 40 succeeds.
    // Negotiation runs against the registered model through the service's
    // prepared-query path (per-level filters land in the shared cache).
    let out = svc
        .negotiate("t", &q, &[1.0, 2.0, 40.0], &Options::default(), |budget| {
            format!("rEdge.avgDelay <= {budget}")
        })
        .unwrap();
    match out {
        NegotiationOutcome::Satisfied { index, .. } => assert_eq!(index, 2),
        other => panic!("unexpected {other:?}"),
    }
    // The free-function wrapper over a bare Network agrees.
    let host = svc.registry().model("t").unwrap();
    let out = negotiate(&host, &q, &[1.0, 2.0, 40.0], &Options::default(), |b| {
        format!("rEdge.avgDelay <= {b}")
    })
    .unwrap();
    assert!(matches!(
        out,
        NegotiationOutcome::Satisfied { index: 2, .. }
    ));
}

#[test]
fn monitoring_churn_invalidates_and_recovers_placements() {
    let svc = NetEmbedService::new();
    svc.registry().register("t", host_with_capacity());
    let mut sim = MonitorSim::new(MonitorParams {
        delay_jitter: 0.3,
        flap_prob: 0.0,
        seed: 17,
    });

    let q = cpu_query(0.0);
    // A tight window around the minimum delay value (5ms).
    let constraint = "rEdge.avgDelay >= 4.5 && rEdge.avgDelay <= 5.5";
    let request = QueryRequest {
        host: "t".into(),
        query: q.clone(),
        constraint: constraint.into(),
        options: Options::default(),
    };
    let initial = svc.submit(&request).unwrap().mappings().len();
    assert!(initial > 0);

    let mut changed = false;
    for _ in 0..15 {
        sim.tick(svc.registry(), "t");
        let now = svc.submit(&request).unwrap().mappings().len();
        if now != initial {
            changed = true;
            break;
        }
    }
    assert!(changed, "30% jitter never changed the answer in 15 ticks");
}

#[test]
fn os_binding_respected_end_to_end() {
    let svc = NetEmbedService::new();
    svc.registry().register("t", host_with_capacity());
    let mut q = cpu_query(1.0);
    q.set_node_attr(NodeId(0), "osType", "linux-2.6");
    q.set_node_attr(NodeId(1), "osType", "linux-2.6");
    let resp = svc
        .submit(&QueryRequest {
            host: "t".into(),
            query: q.clone(),
            constraint: "isBoundTo(vNode.osType, rNode.osType)".into(),
            options: Options::default(),
        })
        .unwrap();
    let host = svc.registry().model("t").unwrap();
    assert!(!resp.mappings().is_empty());
    for m in resp.mappings() {
        for (_, r) in m.iter() {
            assert_eq!(
                host.node_attr_by_name(r, "osType")
                    .and_then(AttrValue::as_str),
                Some("linux-2.6"),
                "os binding violated"
            );
        }
    }
}

#[test]
fn parallel_algorithm_through_service() {
    let svc = NetEmbedService::new();
    svc.registry().register("t", host_with_capacity());
    let q = cpu_query(0.0);
    let serial = svc
        .submit(&QueryRequest {
            host: "t".into(),
            query: q.clone(),
            constraint: "rEdge.avgDelay <= 20.0".into(),
            options: Options::default(),
        })
        .unwrap();
    let parallel = svc
        .submit(&QueryRequest {
            host: "t".into(),
            query: q,
            constraint: "rEdge.avgDelay <= 20.0".into(),
            options: Options {
                algorithm: Algorithm::ParallelEcf { threads: 4 },
                ..Options::default()
            },
        })
        .unwrap();
    assert_eq!(serial.mappings().len(), parallel.mappings().len());
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`) backed by a simple
//! wall-clock measurement loop: per sample, enough iterations to fill a
//! small time budget, reporting min/median/mean over samples.
//!
//! It is intentionally not statistically rigorous — no outlier analysis,
//! no warm-up modelling — but it is honest (real executions, monotonic
//! clock) and fast, which is what an offline CI needs. Set
//! `CRITERION_FILTER=substring` to run a subset of benchmark ids.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id, matching criterion's display form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Measurement settings shared by a group.
#[derive(Clone, Copy)]
struct Settings {
    sample_count: usize,
    /// Target wall-clock budget per sample; iterations are batched to
    /// reach it so per-iteration timer overhead stays negligible.
    sample_budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_count: 10,
            sample_budget: Duration::from_millis(20),
        }
    }
}

/// Top-level bench context, handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Read environment configuration (`CRITERION_FILTER`).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::var("CRITERION_FILTER")
            .ok()
            .filter(|s| !s.is_empty());
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            filter: self.filter.clone(),
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    filter: Option<String>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = n.max(2);
        self
    }

    /// Soft wall-clock budget per sample.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.sample_budget = d / self.settings.sample_count.max(1) as u32;
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            settings: self.settings,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&full_id);
        self
    }

    /// Run one benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            settings: self.settings,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full_id);
        self
    }

    /// End the group (report separator).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`: one warm-up call to size the batch, then
    /// `sample_count` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & batch sizing: time one call.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (self.settings.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.settings.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<56} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<56} min {:>12?}   median {:>12?}   mean {:>12?}   ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Define a bench group runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from bench group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Two API subsets are provided:
//!
//! * `crossbeam::thread::scope`, implemented on top of
//!   `std::thread::scope` (stable since 1.63). The API shape matches
//!   crossbeam's: the scope closure receives a `&Scope`, `Scope::spawn`
//!   passes the scope back into the spawned closure (enabling nested
//!   spawns), and `scope` returns `Result` — though with std's scope a
//!   panicking child propagates at join rather than surfacing as `Err`.
//! * `crossbeam::deque` with `Injector`/`Worker`/`Stealer`/`Steal`, the
//!   work-stealing primitives used by the parallel DFS scheduler. The
//!   real crate's deques are lock-free (Chase–Lev); this stand-in backs
//!   each queue with a `Mutex<VecDeque>`, which preserves the FIFO
//!   ordering of the crate's `new_fifo` flavor (owner pops and thieves
//!   steal from the same end, oldest first) at the cost of lock-freedom
//!   — fine for workers whose task bodies are whole DFS subtrees, i.e.
//!   queue operations are rare relative to work done.

pub mod thread {
    use std::any::Any;
    use std::thread as sthread;

    /// Scope handle passed to spawned closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: sthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(sthread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried. The
        /// mutex-backed stand-in never returns this; it exists for API
        /// compatibility with the lock-free original.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO queue shared by all workers: tasks are pushed at the back
    /// and stolen from the front.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task at the back.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steal the task at the front.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued (racy, advisory only).
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks (racy, advisory only).
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// A worker-owned queue in the crate's `new_fifo` flavor: the owner
    /// pushes at the back and pops at the front, and thieves steal from
    /// the front too — owner and thieves both take the oldest task, so
    /// swapping in the real crate preserves ordering exactly.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// An empty worker deque with FIFO steal order.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A stealer handle onto this deque (cloneable, shareable).
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Owner push (back).
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .push_back(task);
        }

        /// Owner pop (front — FIFO, same end as stealers).
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
        }

        /// True when the deque is empty (racy, advisory only).
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }
    }

    /// A handle for stealing from another worker's deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal the task at the front (the opposite end from the
        /// owner's pop).
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when the deque is empty (racy, advisory only).
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(scope.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn fifo_worker_and_stealer_take_oldest_first() {
        use crate::deque::{Steal, Worker};
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // new_fifo flavor: owner pop and steals drain the same end.
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        use crate::deque::{Injector, Steal};
        let inj: Injector<usize> = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 100);
        let taken: Vec<usize> = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(scope.spawn(|_| {
                    let mut got = Vec::new();
                    while let Steal::Success(t) = inj.steal() {
                        got.push(t);
                    }
                    got
                }));
            }
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        // Every task taken exactly once.
        assert_eq!(taken, (0..100).collect::<Vec<_>>());
        assert!(inj.is_empty());
    }
}

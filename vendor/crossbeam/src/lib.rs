//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63). The API shape matches
//! crossbeam's: the scope closure receives a `&Scope`, `Scope::spawn`
//! passes the scope back into the spawned closure (enabling nested
//! spawns), and `scope` returns `Result` — though with std's scope a
//! panicking child propagates at join rather than surfacing as `Err`.

pub mod thread {
    use std::any::Any;
    use std::thread as sthread;

    /// Scope handle passed to spawned closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: sthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(sthread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(scope.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}

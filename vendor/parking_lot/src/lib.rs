//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — only possible after a panic while holding the guard — is
//! recovered into its inner value, matching parking_lot's behaviour of
//! never poisoning.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex over `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_guards_directly() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}

//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing a `Vec` of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing a `BTreeSet` of values from `element`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `BTreeSet` strategy with a target size drawn from `size`. As in real
/// proptest the size is best-effort: duplicate draws are retried a bounded
/// number of times, so low-entropy element strategies can yield smaller
/// sets than requested.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = vec(0u32..100, 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn btree_set_unique_and_bounded() {
        let mut rng = TestRng::from_seed(2);
        let s = btree_set(0u32..1000, 3..6);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 6);
        }
    }
}

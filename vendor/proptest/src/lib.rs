//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the proptest API surface its tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, [`prop_oneof!`], [`collection::vec`],
//! [`collection::btree_set`], [`sample::Index`], range and tuple
//! strategies, and a simple regex-character-class string strategy.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and seed;
//!   rerun with `PROPTEST_SEED=<seed>` to reproduce, instrumenting as
//!   needed. Shrinking machinery is the bulk of real proptest and is not
//!   worth vendoring.
//! * **Deterministic by default.** Case streams derive from a hash of the
//!   test name, so CI runs are reproducible; `PROPTEST_SEED` perturbs the
//!   stream for exploratory runs.
//! * Generation cannot fail: strategies produce values directly rather
//!   than `NewTree` results.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of test functions whose
/// parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property test; failure reports the case and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {} (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

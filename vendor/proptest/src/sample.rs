//! Sampling helpers (`prop::sample`).

use crate::strategy::{AnyStrategy, Arbitrary, Strategy};
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// An index into a collection of not-yet-known size: stores raw entropy
/// and maps it into `[0, len)` on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolve against a collection of `len` elements. Panics if `len`
    /// is zero (matching real proptest).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        (self.0 % len as u64) as usize
    }
}

impl Strategy for AnyStrategy<Index> {
    type Value = Index;
    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

impl Arbitrary for Index {
    type Strategy = AnyStrategy<Index>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn index_maps_into_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<Index>();
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(s.generate(&mut rng).index(len) < len);
            }
        }
    }
}

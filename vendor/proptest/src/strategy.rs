//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a value directly from the RNG.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one
    /// level from the strategy for the level below. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility; depth
    /// alone bounds recursion here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Type-erased, cheaply clonable form.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy (`Arc`-backed, clonable).
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                ((lo as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategy from a regex-like pattern. Supports the subset the
/// workspace uses: a single character class with optional `{lo,hi}`
/// repetition (e.g. `"[a-z0-9 .-]{0,12}"`); any other pattern is treated
/// as a literal string (backslash escapes removed).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes: Vec<char> = pattern.chars().collect();
    if bytes.first() != Some(&'[') {
        // Literal pattern: strip escapes.
        return pattern.replace('\\', "");
    }
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .expect("unterminated character class in string strategy");
    // Expand the class into a flat alphabet.
    let class = &bytes[1..close];
    let mut alphabet: Vec<char> = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = class[i];
        if c == '\\' && i + 1 < class.len() {
            alphabet.push(class[i + 1]);
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (c as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted range in character class");
            for cp in lo..=hi {
                alphabet.push(char::from_u32(cp).expect("valid class range"));
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class");
    // Repetition suffix.
    let rest: String = bytes[close + 1..].iter().collect();
    let (lo, hi) = parse_repeat(&rest);
    let len = if lo == hi {
        lo
    } else {
        lo + rng.below(hi - lo + 1)
    };
    (0..len)
        .map(|_| alphabet[rng.below(alphabet.len())])
        .collect()
}

fn parse_repeat(suffix: &str) -> (usize, usize) {
    let s = suffix.trim();
    if s.is_empty() {
        return (1, 1);
    }
    if s == "*" {
        return (0, 8);
    }
    if s == "+" {
        return (1, 8);
    }
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition `{s}` in string strategy"));
    match inner.split_once(',') {
        Some((a, b)) => (
            a.trim().parse().expect("repeat lower bound"),
            b.trim().parse().expect("repeat upper bound"),
        ),
        None => {
            let n = inner.trim().parse().expect("repeat count");
            (n, n)
        }
    }
}

/// Types with a canonical strategy ([`any`]).
pub trait Arbitrary {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()` and friends.
pub struct AnyStrategy<T> {
    pub(crate) _marker: PhantomData<T>,
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: PhantomData }
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b, c) = (0u32..8, 3usize..=5, -1.5f64..2.5).generate(&mut r);
            assert!(a < 8);
            assert!((3..=5).contains(&b));
            assert!((-1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn map_flat_map_recursive() {
        let mut r = rng();
        let s = (1u32..4).prop_flat_map(|n| (Just(n), 0u32..n));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut r);
            assert!(k < n);
        }
        // Depth-bounded recursion terminates and mixes leaves and nodes.
        enum T {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u32..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut r)) <= 3);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn string_pattern_class_and_repeat() {
        let mut r = rng();
        let s = "[a-c0-1 _.-]{0,12}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.len() <= 12);
            assert!(
                v.chars().all(|c| "abc01 _.-".contains(c)),
                "bad char in {v:?}"
            );
        }
    }
}

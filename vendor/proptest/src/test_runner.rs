//! Case driver: config, RNG, and the run loop behind [`crate::proptest!`].

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline tier-1 suite
        // quick while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// Precondition not met (`prop_assume!`): retry with a fresh case.
    Reject(String),
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator feeding strategies: the vendored `rand`
/// crate's `StdRng` (real proptest also builds on `rand`), plus the two
/// convenience draws strategies use.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Generator for one case.
    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs the case loop for one test function.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

impl TestRunner {
    /// Runner for the named test. The case stream is a deterministic
    /// function of the test name unless `PROPTEST_SEED` overrides it.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut base_seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            base_seed ^= b as u64;
            base_seed = base_seed.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(env) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = env.trim().parse::<u64>() {
                base_seed ^= s;
            }
        }
        TestRunner {
            config,
            name,
            base_seed,
        }
    }

    /// Run cases until `config.cases` pass; panic on the first failure.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut attempt = 0u64;
        let max_attempts = (self.config.cases as u64).saturating_mul(20).max(100);
        while passed < self.config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest '{}': too many rejected cases ({} attempts, {} passed)",
                    self.name, attempt, passed
                );
            }
            let seed = self
                .base_seed
                .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::from_seed(seed);
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{}' failed at case {} (attempt seed {:#x}): {}\n\
                     (no shrinking in the offline stand-in; rerun with \
                     PROPTEST_SEED to explore nearby cases)",
                    self.name, passed, seed, msg
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        TestRunner::new(ProptestConfig::with_cases(17), "t").run(|_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut rejected = false;
        let mut passed = 0;
        TestRunner::new(ProptestConfig::with_cases(5), "t2").run(|rng| {
            if !rejected && rng.next_u64() % 2 == 0 {
                rejected = true;
                return Err(TestCaseError::reject("flip"));
            }
            passed += 1;
            Ok(())
        });
        assert_eq!(passed, 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics() {
        TestRunner::new(ProptestConfig::with_cases(3), "t3")
            .run(|_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn deterministic_stream_per_name() {
        let collect = || {
            let mut v = Vec::new();
            TestRunner::new(ProptestConfig::with_cases(4), "same").run(|rng| {
                v.push(rng.next_u64());
                Ok(())
            });
            v
        };
        assert_eq!(collect(), collect());
    }
}

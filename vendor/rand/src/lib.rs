//! Offline stand-in for the `rand` crate (0.9-era API subset).
//!
//! Implements the surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random_range, random_bool}` and
//! `seq::SliceRandom::shuffle` — over a xoshiro256++ generator seeded via
//! splitmix64. Determinism per seed is guaranteed (every experiment script
//! keys off a `u64` seed), but the exact stream differs from the real
//! `rand` crate, which is fine: nothing in the workspace pins specific
//! sample values, only reproducibility.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a range. The single blanket
/// [`SampleRange`] impl below routes through this trait so that type
/// inference unifies the range's element type with the sampled type (the
/// real crate has the same shape; per-type `SampleRange` impls would
/// leave integer literals falling back to `i32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // i128 arithmetic covers signed and unsigned alike; the
                // modulo draw's bias is < 2^-40 for every span the
                // workspace uses and irrelevant to its tests.
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range");
                ((lo as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        if inclusive {
            assert!(lo <= hi, "empty range");
        } else {
            assert!(lo < hi, "empty range");
        }
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        f64::sample_between(lo as f64, hi as f64, inclusive, rng) as f32
    }
}

/// A range admissible to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics when empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods (blanket-implemented for every generator).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Generator implementations.
    pub use super::StdRng;
}

pub mod seq {
    //! Slice sampling and shuffling.
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(5u32..=8);
            assert!((5..=8).contains(&y));
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
        assert!(!StdRng::seed_from_u64(3).random_bool(0.0));
        assert!(StdRng::seed_from_u64(3).random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }
}

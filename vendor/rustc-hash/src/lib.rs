//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny API surface it actually uses: `FxHashMap`,
//! `FxHashSet` and the Fx hasher (the multiply-rotate hash used by rustc).
//! Semantics match the real crate; only incidental API (e.g. `FxHasher::
//! with_seed`) is omitted.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Default-seeded builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Firefox/rustc "Fx" hash: xor-rotate-multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32, u32), Vec<u32>> = FxHashMap::default();
        m.entry((1, 2, 3)).or_default().push(7);
        assert_eq!(m[&(1, 2, 3)], vec![7]);
        assert!(!m.contains_key(&(0, 0, 0)));
    }

    #[test]
    fn deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}

//! Offline stand-in for the `smallvec` crate.
//!
//! Provides the `SmallVec<[T; N]>` type with the subset of the real API the
//! workspace uses. Storage is a plain `Vec` (no inline-on-stack
//! optimization) — identical semantics, slightly more allocation. The
//! inline capacity parameter is kept so call sites compile unchanged.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Marker trait tying `[T; N]` to its element type.
pub trait Array {
    /// Element type of the backing array.
    type Item;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
}

/// Vec-backed stand-in for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Empty vector.
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Empty vector with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Append an element.
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Insert an element at `index`, shifting the tail right.
    pub fn insert(&mut self, index: usize, value: A::Item) {
        self.inner.insert(index, value);
    }

    /// Remove and return the element at `index`, shifting the tail left.
    pub fn remove(&mut self, index: usize) -> A::Item {
        self.inner.remove(index)
    }

    /// Keep only elements matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&mut A::Item) -> bool) {
        self.inner.retain_mut(f);
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_slice_ops() {
        let mut v: SmallVec<[(u16, f64); 4]> = SmallVec::new();
        v.push((1, 1.0));
        v.push((2, 2.0));
        assert_eq!(v.len(), 2);
        assert_eq!(v.iter().count(), 2);
        assert_eq!(v[0].0, 1);
        v.retain(|e| e.0 == 2);
        assert_eq!(v.len(), 1);
    }
}
